//! # romp-validation — the OpenMP validation suite analogue
//!
//! The paper's §6A: *"we used our OpenMP validation suite to identify if the
//! enhancements made to the runtime did not cause a code to fail.  The
//! results helped determine some bugs, and we fixed them, such as tracing
//! potential issues with a non-functional synchronization primitive in
//! MCA-libGOMP that caused an OpenMP critical construct to fail."*
//!
//! This crate reproduces that tool (modelled on the OpenMP 3.1 validation
//! suite the authors published, the paper's ref.\[49\]): a battery of
//! construct-conformance checks, each encoding the observable contract of
//! one OpenMP construct, run against every backend and a range of team
//! sizes.  Like the original suite, selected checks carry a **cross-check**
//! — a deliberately broken variant (the construct removed) that must *fail*
//! the same predicate, proving the check can actually detect a broken
//! runtime rather than passing vacuously.
//!
//! ```
//! use romp::{Runtime, BackendKind};
//! use romp_validation::{run_suite, SuiteReport};
//!
//! let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
//! let report: SuiteReport = run_suite(&rt, &[1, 2, 4]);
//! assert!(report.all_passed(), "{}", report.summary());
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use romp::{ReduceOp, Runtime, Schedule};

pub mod chaos;
pub mod serveload;
pub use chaos::{run_chaos, ChaosOutcome, ChaosReport, ChaosRun};
pub use serveload::{drive_cancel_storm, drive_mixed_load, mixed_specs, LoadReport, StormReport};

/// One check's outcome at one team size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Construct/check name.
    pub name: &'static str,
    pub threads: usize,
    /// `None` = passed; `Some(reason)` = failed.
    pub failure: Option<String>,
    /// Whether the cross-check (deliberately broken variant) correctly
    /// failed; `None` when the check has no cross-check.
    pub crosscheck_detected: Option<bool>,
}

/// Results of a full suite run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    pub backend: &'static str,
    pub results: Vec<CheckResult>,
}

impl SuiteReport {
    /// Whether every check passed and every cross-check detected its broken
    /// variant.
    pub fn all_passed(&self) -> bool {
        self.results
            .iter()
            .all(|r| r.failure.is_none() && r.crosscheck_detected.unwrap_or(true))
    }

    /// Human-readable summary of failures (empty when all passed).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for r in &self.results {
            if let Some(f) = &r.failure {
                s.push_str(&format!("{} @ {} threads: {}\n", r.name, r.threads, f));
            }
            if r.crosscheck_detected == Some(false) {
                s.push_str(&format!(
                    "{} @ {} threads: cross-check NOT detected (check is vacuous)\n",
                    r.name, r.threads
                ));
            }
        }
        if s.is_empty() {
            s = format!("{}: all {} checks passed", self.backend, self.results.len());
        }
        s
    }

    /// Count of (checks run, failures).
    pub fn counts(&self) -> (usize, usize) {
        let fails = self
            .results
            .iter()
            .filter(|r| r.failure.is_some() || r.crosscheck_detected == Some(false))
            .count();
        (self.results.len(), fails)
    }
}

type Check = fn(&Runtime, usize) -> Result<(), String>;
/// A deliberately broken variant that must fail the check's predicate.
pub type CrossCheck = fn(&Runtime, usize) -> bool;

fn ok_if(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

// ---------------------------------------------------------------------
// checks
// ---------------------------------------------------------------------

fn check_parallel(rt: &Runtime, n: usize) -> Result<(), String> {
    let mask = AtomicU64::new(0);
    let sizes_ok = AtomicUsize::new(0);
    rt.parallel(n, |w| {
        mask.fetch_or(1 << w.thread_num(), Ordering::Relaxed);
        if w.num_threads() == n {
            sizes_ok.fetch_add(1, Ordering::Relaxed);
        }
    });
    ok_if(mask.load(Ordering::Relaxed) == (1u64 << n) - 1, || {
        format!(
            "thread ids incomplete: mask {:b}",
            mask.load(Ordering::Relaxed)
        )
    })?;
    ok_if(sizes_ok.load(Ordering::Relaxed) == n, || {
        "omp_get_num_threads wrong".into()
    })
}

fn check_for_schedules(rt: &Runtime, n: usize) -> Result<(), String> {
    for sched in [
        Schedule::Static { chunk: None },
        Schedule::Static { chunk: Some(2) },
        Schedule::Dynamic { chunk: 3 },
        Schedule::Guided { chunk: 1 },
        Schedule::Auto,
    ] {
        let count = 701u64;
        let marks: Vec<AtomicUsize> = (0..count).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel(n, |w| {
            w.for_range(0..count, sched, |i| {
                marks[i as usize].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, m) in marks.iter().enumerate() {
            let c = m.load(Ordering::Relaxed);
            if c != 1 {
                return Err(format!("{sched:?}: iteration {i} ran {c} times"));
            }
        }
    }
    Ok(())
}

fn check_barrier(rt: &Runtime, n: usize) -> Result<(), String> {
    let before = AtomicUsize::new(0);
    let violations = AtomicUsize::new(0);
    rt.parallel(n, |w| {
        for _ in 0..20 {
            before.fetch_add(1, Ordering::SeqCst);
            w.barrier();
            if !before.load(Ordering::SeqCst).is_multiple_of(n) {
                violations.fetch_add(1, Ordering::SeqCst);
            }
            w.barrier();
        }
    });
    ok_if(violations.load(Ordering::SeqCst) == 0, || {
        format!(
            "{} barrier phase violations",
            violations.load(Ordering::SeqCst)
        )
    })
}

fn check_single(rt: &Runtime, n: usize) -> Result<(), String> {
    let runs = AtomicUsize::new(0);
    rt.parallel(n, |w| {
        for _ in 0..25 {
            w.single(|| {
                runs.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    ok_if(runs.load(Ordering::Relaxed) == 25, || {
        format!("single ran {} times, want 25", runs.load(Ordering::Relaxed))
    })
}

/// Cross-check for `single`: a broken runtime that lets every thread run
/// the block must be detected by the same predicate.
fn crosscheck_single(rt: &Runtime, n: usize) -> bool {
    let runs = AtomicUsize::new(0);
    rt.parallel(n, |w| {
        for _ in 0..25 {
            // The construct removed: everyone runs the block.
            runs.fetch_add(1, Ordering::Relaxed);
            w.barrier();
        }
    });
    // Detected iff the predicate fails (for n > 1).
    n == 1 || runs.load(Ordering::Relaxed) != 25
}

fn check_critical(rt: &Runtime, n: usize) -> Result<(), String> {
    let value = AtomicU64::new(0);
    let reps = 400u64;
    rt.parallel(n, |w| {
        for _ in 0..reps {
            w.critical("validation", || {
                // Deliberately non-atomic RMW: only mutual exclusion makes
                // the final count exact — the §6A check that caught the
                // paper's broken MCA mutex.
                let v = value.load(Ordering::Relaxed);
                std::hint::spin_loop();
                value.store(v + 1, Ordering::Relaxed);
            });
        }
    });
    let got = value.load(Ordering::Relaxed);
    ok_if(got == reps * n as u64, || {
        format!("critical lost updates: {got}/{}", reps * n as u64)
    })
}

/// Cross-check for `critical`: without the lock the same RMW must lose
/// updates (on a team > 1).  Retried because a loss is probabilistic.
fn crosscheck_critical(rt: &Runtime, n: usize) -> bool {
    if n == 1 {
        return true;
    }
    for _ in 0..20 {
        let value = AtomicU64::new(0);
        let reps = 200u64;
        rt.parallel(n, |_w| {
            for _ in 0..reps {
                let v = value.load(Ordering::Relaxed);
                // Widen the race window so the broken variant loses updates
                // even on a single-core host where threads timeslice.
                std::thread::yield_now();
                value.store(v + 1, Ordering::Relaxed);
            }
        });
        if value.load(Ordering::Relaxed) != reps * n as u64 {
            return true; // lost update observed → a broken critical is detectable
        }
    }
    false
}

fn check_master(rt: &Runtime, n: usize) -> Result<(), String> {
    let who = Mutex::new(Vec::new());
    rt.parallel(n, |w| {
        w.master(|| who.lock().unwrap().push(w.thread_num()));
    });
    let who = who.into_inner().unwrap();
    ok_if(who == vec![0], || format!("master ran on {who:?}"))
}

fn check_sections(rt: &Runtime, n: usize) -> Result<(), String> {
    let marks: Vec<AtomicUsize> = (0..9).map(|_| AtomicUsize::new(0)).collect();
    rt.parallel(n, |w| {
        w.sections(9, |i| {
            marks[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    for (i, m) in marks.iter().enumerate() {
        if m.load(Ordering::Relaxed) != 1 {
            return Err(format!(
                "section {i} ran {} times",
                m.load(Ordering::Relaxed)
            ));
        }
    }
    Ok(())
}

fn check_reductions(rt: &Runtime, n: usize) -> Result<(), String> {
    let out = Mutex::new((0u64, 0u64, 0.0f64, 0u64));
    rt.parallel(n, |w| {
        let tid = w.thread_num() as u64;
        let sum = w.reduce_u64(tid + 1, ReduceOp::Sum);
        let maxv = w.reduce_u64(tid, ReduceOp::Max);
        let fsum = w.reduce_f64(0.5, ReduceOp::Sum);
        let band = w.reduce_u64(!(1 << tid), ReduceOp::BitAnd);
        if w.is_master() {
            *out.lock().unwrap() = (sum, maxv, fsum, band);
        }
    });
    let (sum, maxv, fsum, band) = *out.lock().unwrap();
    let n64 = n as u64;
    ok_if(sum == n64 * (n64 + 1) / 2, || format!("sum {sum}"))?;
    ok_if(maxv == n64 - 1, || format!("max {maxv}"))?;
    ok_if((fsum - 0.5 * n as f64).abs() < 1e-12, || {
        format!("fsum {fsum}")
    })?;
    // AND of !(1 << t) over t in 0..n clears exactly the low n bits.
    let mut want = u64::MAX;
    for t in 0..n64 {
        want &= !(1 << t);
    }
    ok_if(band == want, || format!("band {band:b} want {want:b}"))
}

fn check_ordered(rt: &Runtime, n: usize) -> Result<(), String> {
    let log = Mutex::new(Vec::new());
    rt.parallel(n, |w| {
        w.for_range_ordered(0..40, Schedule::Dynamic { chunk: 2 }, |i| {
            w.ordered(i, || log.lock().unwrap().push(i));
        });
    });
    let log = log.into_inner().unwrap();
    ok_if(log == (0..40).collect::<Vec<u64>>(), || {
        format!("ordered sequence broken: {log:?}")
    })
}

fn check_tasks(rt: &Runtime, n: usize) -> Result<(), String> {
    let done = Arc::new(AtomicUsize::new(0));
    let observed = AtomicUsize::new(0);
    rt.parallel(n, |w| {
        if w.is_master() {
            for _ in 0..30 {
                let d = Arc::clone(&done);
                w.task(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
            w.taskwait();
            observed.store(done.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    });
    ok_if(observed.load(Ordering::Relaxed) == 30, || {
        format!("taskwait saw {}/30 tasks", observed.load(Ordering::Relaxed))
    })
}

fn check_locks(rt: &Runtime, n: usize) -> Result<(), String> {
    let lock = rt.new_lock();
    let value = AtomicU64::new(0);
    rt.parallel(n, |_| {
        for _ in 0..300 {
            lock.with(|| {
                let v = value.load(Ordering::Relaxed);
                value.store(v + 1, Ordering::Relaxed);
            });
        }
    });
    let got = value.load(Ordering::Relaxed);
    ok_if(got == 300 * n as u64, || {
        format!("lock lost updates: {got}")
    })
}

fn check_single_copyprivate(rt: &Runtime, n: usize) -> Result<(), String> {
    let distinct = Mutex::new(std::collections::HashSet::new());
    rt.parallel(n, |w| {
        for round in 0..5u64 {
            let v: u64 = w.single_copy(|| round * 1000 + w.thread_num() as u64);
            distinct.lock().unwrap().insert((round, v));
        }
    });
    let distinct = distinct.into_inner().unwrap();
    // One broadcast value per round: n threads × 5 rounds collapse to 5.
    ok_if(distinct.len() == 5, || {
        format!("copyprivate produced {} values, want 5", distinct.len())
    })
}

fn check_nested_serialization(rt: &Runtime, n: usize) -> Result<(), String> {
    let inner_team_sizes = Mutex::new(Vec::new());
    let rt2 = rt.clone();
    rt.parallel(n, |_w| {
        rt2.parallel(4, |iw| {
            inner_team_sizes.lock().unwrap().push(iw.num_threads());
        });
    });
    let sizes = inner_team_sizes.into_inner().unwrap();
    ok_if(sizes.len() == n && sizes.iter().all(|&s| s == 1), || {
        format!("nested regions not serialized: {sizes:?}")
    })
}

fn check_taskloop(rt: &Runtime, n: usize) -> Result<(), String> {
    let marks: Arc<Vec<AtomicUsize>> = Arc::new((0..333).map(|_| AtomicUsize::new(0)).collect());
    let m_out = Arc::clone(&marks);
    rt.parallel(n, move |w| {
        if w.is_master() {
            let m = Arc::clone(&m_out);
            w.taskloop(0..333, 11, move |i| {
                m[i as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    for (i, m) in marks.iter().enumerate() {
        let c = m.load(Ordering::Relaxed);
        if c != 1 {
            return Err(format!("taskloop iteration {i} ran {c} times"));
        }
    }
    Ok(())
}

fn check_runtime_schedule_env(rt: &Runtime, n: usize) -> Result<(), String> {
    // schedule(runtime) must resolve to *some* valid schedule and still
    // tile the space exactly.
    let marks: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
    rt.parallel(n, |w| {
        w.for_range(0..257, Schedule::Runtime, |i| {
            marks[i as usize].fetch_add(1, Ordering::Relaxed);
        });
    });
    ok_if(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1), || {
        "schedule(runtime) mis-tiled the loop".into()
    })
}

fn check_generic_reduction(rt: &Runtime, n: usize) -> Result<(), String> {
    let out = Mutex::new(0u64);
    rt.parallel(n, |w| {
        // Reduce a non-word type: (count, sum) pairs.
        let pair = w.reduce_with((1u64, w.thread_num() as u64), |a, b| (a.0 + b.0, a.1 + b.1));
        if w.is_master() {
            *out.lock().unwrap() = pair.0 * 10_000 + pair.1;
        }
    });
    let got = *out.lock().unwrap();
    let n64 = n as u64;
    let want = n64 * 10_000 + n64 * (n64 - 1) / 2;
    ok_if(got == want, || {
        format!("generic reduction got {got}, want {want}")
    })
}

fn check_atomics_visibility_after_flush(rt: &Runtime, n: usize) -> Result<(), String> {
    // flush + barrier publishes plain atomic stores across the team.
    let cell = AtomicU64::new(0);
    let seen = AtomicUsize::new(0);
    rt.parallel(n, |w| {
        if w.thread_num() == 0 {
            cell.store(0xFEED, Ordering::Relaxed);
            w.flush();
        }
        w.barrier();
        if cell.load(Ordering::Relaxed) == 0xFEED {
            seen.fetch_add(1, Ordering::Relaxed);
        }
    });
    ok_if(seen.load(Ordering::Relaxed) == n, || {
        format!(
            "{}/{} members saw the flushed store",
            seen.load(Ordering::Relaxed),
            n
        )
    })
}

/// The checks the suite runs, with optional cross-checks.
pub fn checks() -> Vec<(&'static str, Check, Option<CrossCheck>)> {
    vec![
        ("parallel", check_parallel as Check, None),
        ("for-schedules", check_for_schedules, None),
        ("barrier", check_barrier, None),
        (
            "single",
            check_single,
            Some(crosscheck_single as CrossCheck),
        ),
        ("critical", check_critical, Some(crosscheck_critical)),
        ("master", check_master, None),
        ("sections", check_sections, None),
        ("reductions", check_reductions, None),
        ("ordered", check_ordered, None),
        ("tasks", check_tasks, None),
        ("locks", check_locks, None),
        ("single-copyprivate", check_single_copyprivate, None),
        ("nested-serialization", check_nested_serialization, None),
        ("taskloop", check_taskloop, None),
        ("schedule-runtime", check_runtime_schedule_env, None),
        ("generic-reduction", check_generic_reduction, None),
        (
            "flush-visibility",
            check_atomics_visibility_after_flush,
            None,
        ),
    ]
}

/// Run the whole suite on `rt` at each team size.
pub fn run_suite(rt: &Runtime, team_sizes: &[usize]) -> SuiteReport {
    let mut results = Vec::new();
    for &n in team_sizes {
        for (name, check, crosscheck) in checks() {
            let failure = check(rt, n).err();
            let crosscheck_detected = crosscheck.map(|cc| cc(rt, n));
            results.push(CheckResult {
                name,
                threads: n,
                failure,
                crosscheck_detected,
            });
        }
    }
    SuiteReport {
        backend: rt.backend_kind().label(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    #[test]
    fn suite_passes_on_native_backend() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let report = run_suite(&rt, &[1, 2, 4]);
        assert!(report.all_passed(), "{}", report.summary());
    }

    #[test]
    fn suite_passes_on_mca_backend() {
        // The paper's §6A run: the suite over MCA-libGOMP.  The broken
        // critical it describes would fail `check_critical` here.
        let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
        let report = run_suite(&rt, &[1, 3, 4]);
        assert!(report.all_passed(), "{}", report.summary());
    }

    #[test]
    fn suite_passes_at_board_scale_team() {
        // 24 threads = the T4240's hardware thread count, oversubscribed on
        // the host; the runtime must stay correct regardless.
        let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
        let report = run_suite(&rt, &[24]);
        assert!(report.all_passed(), "{}", report.summary());
    }

    #[test]
    fn report_counts_and_summary() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let report = run_suite(&rt, &[2]);
        let (total, failed) = report.counts();
        assert_eq!(total, checks().len());
        assert_eq!(failed, 0);
        assert!(report.summary().contains("all"));
    }

    #[test]
    fn crosschecks_fire_on_multithread_teams() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let report = run_suite(&rt, &[4]);
        for r in &report.results {
            if let Some(detected) = r.crosscheck_detected {
                assert!(detected, "{} cross-check vacuous", r.name);
            }
        }
    }
}
