//! simstorm — sweep deterministic-simulation seeds and gate on
//! invariants.
//!
//! ```text
//! simstorm [--scenario NAME|all] [--seeds N] [--base B]
//! simstorm --scenario NAME --seed S [--trace]
//! ```
//!
//! Sweep mode runs seeds `B..B+N` for each selected scenario class and
//! exits non-zero if any run violates an invariant, printing the
//! `(scenario, seed)` pair that reproduces it.  Single-seed mode reruns
//! one schedule, optionally dumping the full event trace.

use std::process::ExitCode;

use romp_sim::{run_scenario, Scenario};

struct Args {
    scenario: String,
    seeds: u64,
    base: u64,
    seed: Option<u64>,
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "all".to_string(),
        seeds: 250,
        base: 1,
        seed: None,
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scenario" => args.scenario = val("--scenario")?,
            "--seeds" => {
                args.seeds = val("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--base" => args.base = val("--base")?.parse().map_err(|e| format!("--base: {e}"))?,
            "--seed" => {
                args.seed = Some(val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?)
            }
            "--trace" => args.trace = true,
            "--help" | "-h" => {
                println!(
                    "simstorm [--scenario NAME|all] [--seeds N] [--base B] [--seed S] [--trace]\n\
                     scenarios: {}",
                    Scenario::all()
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn scenarios_for(sel: &str) -> Result<Vec<Scenario>, String> {
    if sel == "all" {
        return Ok(Scenario::all());
    }
    Scenario::by_name(sel)
        .map(|s| vec![s])
        .ok_or_else(|| format!("unknown scenario {sel}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simstorm: {e}");
            return ExitCode::from(2);
        }
    };
    let scenarios = match scenarios_for(&args.scenario) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simstorm: {e}");
            return ExitCode::from(2);
        }
    };

    // Single-seed reproduction mode.
    if let Some(seed) = args.seed {
        let mut failed = false;
        for sc in scenarios {
            let name = sc.name;
            let report = run_scenario(sc, seed, args.trace);
            if let Some(trace) = &report.trace {
                println!("--- trace {name} seed={seed} ---");
                print!("{trace}");
                println!("--- end trace ---");
            }
            println!(
                "{name} seed={seed}: {} (accepted={} resolved={} rejected={} sheds={} \
                 idem_hits={} idem_pending={} retractions={} escalations={} events={} \
                 vtime={}ms)",
                if report.ok() { "OK" } else { "FAIL" },
                report.stats.accepted,
                report.stats.resolved,
                report.stats.rejected,
                report.stats.sheds,
                report.stats.idem_hits,
                report.stats.idem_pending_hits,
                report.stats.retractions,
                report.stats.escalations,
                report.stats.events,
                report.stats.virtual_ms,
            );
            for v in &report.violations {
                println!("  violation: {v}");
                failed = true;
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    // Sweep mode.
    let mut any_failed = false;
    for sc in scenarios {
        let name = sc.name;
        let mut failures = 0u64;
        let mut accepted = 0u64;
        let mut resolved = 0u64;
        let mut rejected = 0u64;
        let mut sheds = 0u64;
        let mut idem = 0u64;
        let mut escalations = 0u64;
        let mut events = 0u64;
        for seed in args.base..args.base + args.seeds {
            let report = run_scenario(sc.clone(), seed, false);
            accepted += report.stats.accepted;
            resolved += report.stats.resolved;
            rejected += report.stats.rejected;
            sheds += report.stats.sheds;
            idem += report.stats.idem_hits;
            escalations += report.stats.escalations;
            events += report.stats.events;
            if !report.ok() {
                any_failed = true;
                failures += 1;
                if failures <= 5 {
                    println!("FAIL scenario={name} seed={seed}");
                    for v in &report.violations {
                        println!("  violation: {v}");
                    }
                    println!("  reproduce: simstorm --scenario {name} --seed {seed} --trace");
                }
            }
        }
        println!(
            "{name}: {}/{} seeds ok (accepted={accepted} resolved={resolved} \
             rejected={rejected} sheds={sheds} idem_hits={idem} \
             escalations={escalations} events={events})",
            args.seeds - failures,
            args.seeds,
        );
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
