//! The simulator's serving core: the production `ServeCore` policy over
//! virtual-clock state.
//!
//! [`SimCore`] owns the *same* building blocks the production server
//! does — a [`JobTable`] (on the virtual clock), the bounded
//! [`JobQueue`], and the `serve.*` [`Metrics`] resolved from a private
//! registry — and implements [`ServeCore`], so admission, idempotency,
//! fetch/await consumption, cancel and drain run the production code
//! paths verbatim.  Only the accessors differ: single-threaded `Cell`s
//! replace atomics, and completions are collected for the event loop to
//! deliver instead of broadcast over mailboxes.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use mca_platform::Clock;
use romp_serve::session::ServeCore;
use romp_serve::{DedupConfig, JobLimits, JobQueue, JobTable, Metrics};
use romp_trace::MetricsRegistry;

/// Construction knobs for a [`SimCore`].
pub struct SimCoreConfig {
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Deadline for jobs that do not request one (ms; 0 = none).
    pub default_deadline_ms: u32,
    /// Idempotency map bounds.
    pub dedup: DedupConfig,
    /// Enable deadline-based admission shedding.
    pub shed: bool,
}

/// The simulated serving stack's shared state (see module docs).
pub struct SimCore {
    table: JobTable,
    queue: JobQueue,
    metrics: Metrics,
    registry: MetricsRegistry,
    limits: JobLimits,
    default_deadline_ms: u32,
    shed: bool,
    draining: Cell<bool>,
    ewma_ns: Cell<u64>,
    class_ewma: RefCell<HashMap<String, u64>>,
    activity: Cell<u64>,
    completions: RefCell<Vec<u64>>,
}

impl SimCore {
    /// A core on `clock` (the run's virtual clock).
    pub fn new(clock: Clock, cfg: SimCoreConfig) -> Self {
        let registry = MetricsRegistry::new();
        let metrics = Metrics::new(&registry);
        SimCore {
            table: JobTable::new(clock, cfg.dedup),
            queue: JobQueue::new(cfg.queue_cap),
            metrics,
            registry,
            limits: JobLimits {
                allow_diag: true,
                ..JobLimits::default()
            },
            default_deadline_ms: cfg.default_deadline_ms,
            shed: cfg.shed,
            draining: Cell::new(false),
            ewma_ns: Cell::new(0),
            class_ewma: RefCell::new(HashMap::new()),
            activity: Cell::new(0),
            completions: RefCell::new(Vec::new()),
        }
    }

    /// The run's metrics registry (invariant checks read it back).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Record one job's execution time into the retry-hint EWMA
    /// (α = 1/8, the production dispatcher's smoothing).
    pub fn note_exec_time(&self, exec_ns: u64) {
        let prev = self.ewma_ns.get();
        let next = if prev == 0 {
            exec_ns
        } else {
            prev - prev / 8 + exec_ns / 8
        };
        self.ewma_ns.set(next);
    }

    /// Record one job's execution time into its class's EWMA (the
    /// per-class service-time estimate the shed gate consults).
    pub fn note_class_exec_time(&self, label: &str, exec_ns: u64) {
        let mut map = self.class_ewma.borrow_mut();
        match map.get_mut(label) {
            Some(prev) => *prev = *prev - *prev / 8 + exec_ns / 8,
            None => {
                map.insert(label.to_string(), exec_ns);
            }
        }
    }

    /// Bump the activity counter (the watchdog's progress signal; the
    /// production runtime bumps it per region/task milestone).
    pub fn bump_activity(&self) {
        self.activity.set(self.activity.get() + 1);
    }

    /// Drain the completion notifications queued by
    /// [`ServeCore::on_complete`] since the last call.
    pub fn take_completions(&self) -> Vec<u64> {
        std::mem::take(&mut *self.completions.borrow_mut())
    }
}

impl ServeCore for SimCore {
    fn table(&self) -> &JobTable {
        &self.table
    }

    fn queue(&self) -> &JobQueue {
        &self.queue
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn limits(&self) -> &JobLimits {
        &self.limits
    }

    fn default_deadline_ms(&self) -> u32 {
        self.default_deadline_ms
    }

    fn draining(&self) -> bool {
        self.draining.get()
    }

    fn begin_drain(&self) {
        self.draining.set(true);
        self.queue.close();
    }

    fn ewma_ns(&self) -> u64 {
        self.ewma_ns.get()
    }

    fn class_ewma_ns(&self, label: &str) -> Option<u64> {
        self.class_ewma.borrow().get(label).copied()
    }

    fn shed_enabled(&self) -> bool {
        self.shed
    }

    fn activity(&self) -> u64 {
        self.activity.get()
    }

    fn outstanding(&self) -> u64 {
        let m = &self.metrics;
        let done = m.completed.get() + m.failed.get() + m.cancelled.get() + m.timed_out.get();
        m.accepted.get().saturating_sub(done)
    }

    fn stats_json(&self) -> String {
        let m = &self.metrics;
        format!(
            "{{\"backend\":\"sim\",\"degraded\":false,\"draining\":{},\
             \"queue_depth\":{},\"queue_cap\":{},\"outstanding\":{},\
             \"accepted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"cancelled\":{},\"timed_out\":{},\
             \"metrics\":{}}}",
            self.draining.get(),
            self.queue.len(),
            self.queue.cap(),
            self.outstanding(),
            m.accepted.get(),
            m.rejected.get(),
            m.completed.get(),
            m.failed.get(),
            m.cancelled.get(),
            m.timed_out.get(),
            self.registry.snapshot().to_json(),
        )
    }

    fn on_complete(&self, job: u64) {
        self.completions.borrow_mut().push(job);
    }
}
