//! The simulated network: per-connection duplex links carrying the real
//! wire bytes.
//!
//! Frames produced by `romp_serve::protocol` travel as opaque byte
//! payloads; nothing here understands the protocol, exactly like a real
//! kernel socket.  Two delivery modes:
//!
//! * **TCP mode** ([`LinkDir::send`]) — reliable and ordered, like the
//!   production transport: every payload arrives exactly once, after the
//!   link's base delay plus seeded jitter, and never before a payload
//!   sent earlier on the same direction (a FIFO clamp models the stream's
//!   in-order guarantee).  Partitions *hold* traffic in order and release
//!   it on heal — delivered late, never dropped, which is what a TCP
//!   stream that survives the partition does.
//! * **Adversarial mode** ([`LinkDir::send_adversarial`]) — the
//!   protocol-robustness harness.  The payload is split at seeded byte
//!   boundaries and the chunks may be duplicated, dropped, or reordered.
//!   No real TCP stream does this to framed bytes, so production serving
//!   never sees it — the mode exists to prove the frame decoder and
//!   request router survive *arbitrary* byte streams with typed errors,
//!   never panics (the property tests drive it).

use std::collections::{BTreeMap, VecDeque};

use mca_sync::SmallRng;

/// What travels on a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A run of stream bytes (one or more wire frames, or fragments).
    Bytes(Vec<u8>),
    /// The sender closed its write side.
    Eof,
}

/// One direction of a duplex link.
#[derive(Debug)]
pub struct LinkDir {
    /// Base propagation delay, virtual ns.
    pub delay_ns: u64,
    /// Max extra seeded jitter, virtual ns (uniform in `0..=jitter_ns`).
    pub jitter_ns: u64,
    /// Latest delivery timestamp scheduled so far (the FIFO clamp).
    last_at: u64,
    /// Whether the direction is partitioned (traffic held, not lost).
    partitioned: bool,
    /// Payloads held while partitioned, in send order.
    held: VecDeque<Payload>,
}

impl LinkDir {
    /// A direction with the given delay characteristics.
    pub fn new(delay_ns: u64, jitter_ns: u64) -> Self {
        LinkDir {
            delay_ns,
            jitter_ns,
            last_at: 0,
            partitioned: false,
            held: VecDeque::new(),
        }
    }

    fn schedule(&mut self, now_ns: u64, rng: &mut SmallRng) -> u64 {
        let jitter = if self.jitter_ns == 0 {
            0
        } else {
            rng.gen_range(0, self.jitter_ns + 1)
        };
        // In-order delivery: never before anything already in flight.
        let at = (now_ns + self.delay_ns + jitter).max(self.last_at + 1);
        self.last_at = at;
        at
    }

    /// TCP-mode send: returns the delivery `(at_ns, payload)`, or `None`
    /// if the direction is partitioned (the payload is held for heal).
    pub fn send(
        &mut self,
        now_ns: u64,
        rng: &mut SmallRng,
        payload: Payload,
    ) -> Option<(u64, Payload)> {
        if self.partitioned {
            self.held.push_back(payload);
            return None;
        }
        let at = self.schedule(now_ns, rng);
        Some((at, payload))
    }

    /// Adversarial send: split `bytes` at seeded boundaries; chunks may
    /// be dropped, duplicated, and delivered out of order.  Returns the
    /// deliveries to schedule.
    pub fn send_adversarial(
        &mut self,
        now_ns: u64,
        rng: &mut SmallRng,
        bytes: &[u8],
    ) -> Vec<(u64, Payload)> {
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            let max_chunk = (bytes.len() - off).min(64);
            let n = rng.gen_index(1, max_chunk + 1);
            let chunk = bytes[off..off + n].to_vec();
            off += n;
            let roll = rng.gen_range(0, 100);
            if roll < 10 {
                continue; // drop
            }
            // No FIFO clamp: reordering is the point.
            let at = now_ns + self.delay_ns + rng.gen_range(0, self.jitter_ns.max(1) + 1);
            if roll < 20 {
                // duplicate, possibly arriving before the original
                let at2 = now_ns + self.delay_ns + rng.gen_range(0, self.jitter_ns.max(1) + 1);
                out.push((at2, Payload::Bytes(chunk.clone())));
            }
            out.push((at, Payload::Bytes(chunk)));
        }
        out
    }

    /// Cut the direction: subsequent sends are held, in order.
    pub fn partition(&mut self) {
        self.partitioned = true;
    }

    /// Whether the direction is currently cut.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Heal the direction: everything held is scheduled for delivery,
    /// send order preserved.
    pub fn heal(&mut self, now_ns: u64, rng: &mut SmallRng) -> Vec<(u64, Payload)> {
        self.partitioned = false;
        let mut out = Vec::new();
        while let Some(p) = self.held.pop_front() {
            let at = self.schedule(now_ns, rng);
            out.push((at, p));
        }
        out
    }
}

/// A duplex client↔server link.
#[derive(Debug)]
pub struct DuplexLink {
    /// Client → server direction.
    pub up: LinkDir,
    /// Server → client direction.
    pub down: LinkDir,
}

/// The per-connection link table (BTreeMap: deterministic iteration).
#[derive(Debug, Default)]
pub struct SimNet {
    links: BTreeMap<u64, DuplexLink>,
}

impl SimNet {
    /// An empty network.
    pub fn new() -> Self {
        SimNet::default()
    }

    /// Install the link for connection `conn`.
    pub fn add_link(&mut self, conn: u64, link: DuplexLink) {
        self.links.insert(conn, link);
    }

    /// The link for `conn` (panics if absent — links live for the run).
    pub fn link(&mut self, conn: u64) -> &mut DuplexLink {
        self.links.get_mut(&conn).expect("link exists")
    }

    /// Connection ids, ascending (deterministic).
    pub fn conns(&self) -> Vec<u64> {
        self.links.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_mode_preserves_order_under_jitter() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut dir = LinkDir::new(1_000, 5_000);
        let mut last = 0;
        for i in 0..50u8 {
            let (at, p) = dir
                .send(i as u64 * 10, &mut rng, Payload::Bytes(vec![i]))
                .unwrap();
            assert!(at > last, "FIFO clamp holds");
            last = at;
            assert_eq!(p, Payload::Bytes(vec![i]));
        }
    }

    #[test]
    fn partition_holds_and_heal_releases_in_order() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut dir = LinkDir::new(100, 0);
        dir.partition();
        assert!(dir.send(0, &mut rng, Payload::Bytes(vec![1])).is_none());
        assert!(dir.send(5, &mut rng, Payload::Bytes(vec![2])).is_none());
        assert!(dir.send(9, &mut rng, Payload::Eof).is_none());
        let released = dir.heal(1_000, &mut rng);
        assert_eq!(released.len(), 3);
        assert_eq!(released[0].1, Payload::Bytes(vec![1]));
        assert_eq!(released[2].1, Payload::Eof);
        assert!(released.windows(2).all(|w| w[0].0 < w[1].0), "order kept");
    }
}
