//! Scenario definitions, the per-run report, and the sweep driver.
//!
//! A [`Scenario`] is a bundle of world knobs; four classes cover the
//! serving stack's hazard surface:
//!
//! * **`fault_storm`** — a timed persistent `mca-mrapi` fault arms
//!   mid-run; executions fail or wedge from then on, deadlines fire,
//!   the watchdog escalates.  Invariant focus: faults degrade results,
//!   never drop accepted jobs.
//! * **`partition_heal`** — a subset of links is cut mid-load and
//!   healed later; held traffic replays in order.  Focus: retries,
//!   idempotent resubmission, and parked awaits all survive the gap.
//! * **`slow_client`** — stats hammers pipeline large responses into
//!   tiny write windows with sluggish reads.  Focus: write
//!   backpressure, deferred decoding, and fairness never wedge the
//!   service or lose responses.
//! * **`cancel_storm`** — a small queue, aggressive cancels, duplicate
//!   submit bursts and late duplicates.  Focus: the idempotency map
//!   and cancel/terminal-state machine under maximum contention (the
//!   class that reproduced the idem-claim-before-admission race).
//! * **`overload_storm`** — saturating Batch-priority load with a
//!   trickle of tight-deadline Hi jobs, admission shedding on.  Focus:
//!   the EDF/priority dispatcher and the shed gate — Hi jobs are never
//!   shed, and no accepted job misses its deadline by more than the
//!   watchdog's enforcement granularity.
//!
//! [`run_scenario`] builds a [`World`], runs it to quiescence, and
//! distils the [`SimReport`] the sweeps and CI gate on.

use mca_sync::SmallRng;
use romp_serve::session::ServeCore;
use romp_serve::DedupConfig;

use crate::client::{ClientProfile, Hammer};
use crate::core::SimCoreConfig;
use crate::net::{DuplexLink, LinkDir};
use crate::world::World;

/// One scenario class: every knob the world needs (see module docs).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario class name (sweep selector, report label).
    pub name: &'static str,
    /// Concurrent clients (client 0 is the shutdown controller).
    pub clients: usize,
    /// Jobs each non-hammer client runs to completion.
    pub jobs_per_client: u32,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Server default deadline (ms; 0 = none).  Must be non-zero when
    /// `wedge_pm > 0`: only deadlines end wedges.
    pub default_deadline_ms: u32,
    /// Idempotency map cap.
    pub dedup_cap: usize,
    /// Unfetched-result TTL, ms.
    pub result_ttl_ms: u64,
    /// P(cancel after accept), per-mille.
    pub cancel_pm: u64,
    /// P(duplicate submit in the same payload), per-mille.
    pub dup_pm: u64,
    /// P(duplicate submit after acceptance), per-mille.
    pub late_dup_pm: u64,
    /// P(no idempotency key), per-mille.
    pub nokey_pm: u64,
    /// P(explicit per-job deadline), per-mille.
    pub explicit_deadline_pm: u64,
    /// Explicit deadline range, ms.
    pub deadline_ms: (u32, u32),
    /// P(execution wedges), per-mille (deadline-holding jobs only).
    pub wedge_pm: u64,
    /// P(execution fails), per-mille.
    pub fail_pm: u64,
    /// Modelled execution time range, virtual ns.
    pub exec_ns: (u64, u64),
    /// Per-link base one-way delay range, virtual ns.
    pub link_delay_ns: (u64, u64),
    /// Per-link delivery jitter bound, virtual ns.
    pub link_jitter_ns: u64,
    /// Client read latency range (window refill delay), virtual ns.
    pub ack_delay_ns: (u64, u64),
    /// Server per-connection write window, bytes (socket send buffer).
    pub window: usize,
    /// How many trailing clients are stats hammers.
    pub hammers: usize,
    /// Hammer: bursts per client.
    pub hammer_bursts: u32,
    /// Hammer: pipelined `Stats` frames per burst.
    pub hammer_pipeline: u32,
    /// Think time between jobs, virtual ns.
    pub think_ns: (u64, u64),
    /// Rejected-submit retries before a client gives a job up.
    pub max_retries: u32,
    /// Controller: P(shutdown right after its own jobs), per-mille.
    pub shutdown_early_pm: u64,
    /// Partition window (start_ms, heal_ms), if any.
    pub partition_ms: Option<(u64, u64)>,
    /// How many connections the partition cuts.
    pub partition_conns: usize,
    /// When the timed persistent MRAPI fault arms (virtual ms), if ever.
    pub fault_at_ms: Option<u64>,
    /// Watchdog sweep interval, virtual ms.
    pub watchdog_tick_ms: u64,
    /// Stalled-cancel grace before escalation, virtual ms.
    pub escalation_grace_ms: u64,
    /// Virtual-time budget; exceeding it is a violation.
    pub horizon_ms: u64,
    /// Enable deadline-based admission shedding (and its invariants).
    pub shed: bool,
    /// Leading non-controller clients that submit Hi-priority jobs with
    /// tight explicit deadlines; with `hi_clients > 0` every other
    /// non-hammer client submits at Batch priority.
    pub hi_clients: usize,
}

impl Scenario {
    fn base() -> Scenario {
        Scenario {
            name: "base",
            clients: 8,
            jobs_per_client: 8,
            queue_cap: 16,
            default_deadline_ms: 400,
            dedup_cap: 4096,
            result_ttl_ms: 60_000,
            cancel_pm: 100,
            dup_pm: 150,
            late_dup_pm: 80,
            nokey_pm: 200,
            explicit_deadline_pm: 150,
            deadline_ms: (40, 300),
            wedge_pm: 0,
            fail_pm: 60,
            exec_ns: (500_000, 12_000_000),
            link_delay_ns: (20_000, 400_000),
            link_jitter_ns: 150_000,
            ack_delay_ns: (5_000, 100_000),
            window: 64 * 1024,
            hammers: 0,
            hammer_bursts: 6,
            hammer_pipeline: 48,
            think_ns: (100_000, 3_000_000),
            max_retries: 400,
            shutdown_early_pm: 0,
            partition_ms: None,
            partition_conns: 0,
            fault_at_ms: None,
            watchdog_tick_ms: 10,
            escalation_grace_ms: 60,
            horizon_ms: 300_000,
            shed: false,
            hi_clients: 0,
        }
    }

    /// Mid-run MRAPI fault: failures and wedges, watchdog escalation.
    pub fn fault_storm() -> Scenario {
        Scenario {
            name: "fault_storm",
            wedge_pm: 60,
            fail_pm: 120,
            fault_at_ms: Some(60),
            jobs_per_client: 6,
            shutdown_early_pm: 50,
            ..Scenario::base()
        }
    }

    /// A link partition cuts half the clients mid-load, then heals.
    pub fn partition_heal() -> Scenario {
        Scenario {
            name: "partition_heal",
            partition_ms: Some((30, 110)),
            partition_conns: 4,
            cancel_pm: 60,
            ..Scenario::base()
        }
    }

    /// Stats hammers against tiny write windows with slow reads.
    pub fn slow_client() -> Scenario {
        Scenario {
            name: "slow_client",
            clients: 6,
            hammers: 3,
            window: 4 * 1024,
            ack_delay_ns: (200_000, 2_000_000),
            jobs_per_client: 5,
            hammer_bursts: 5,
            hammer_pipeline: 64,
            ..Scenario::base()
        }
    }

    /// Maximum idempotency/cancel contention on a small queue.
    pub fn cancel_storm() -> Scenario {
        Scenario {
            name: "cancel_storm",
            queue_cap: 4,
            clients: 10,
            jobs_per_client: 7,
            cancel_pm: 450,
            dup_pm: 500,
            late_dup_pm: 250,
            nokey_pm: 80,
            explicit_deadline_pm: 300,
            deadline_ms: (20, 120),
            wedge_pm: 25,
            dedup_cap: 24,
            result_ttl_ms: 30_000,
            shutdown_early_pm: 80,
            ..Scenario::base()
        }
    }

    /// Batch saturation against a trickle of tight-deadline Hi jobs,
    /// with the shed gate on.  Sized so the Batch backlog's predicted
    /// wait overruns the 100ms default deadline (sheds happen) while
    /// the Hi lane's weighted overtake keeps Hi predictions far under
    /// their 150–250ms slack (Hi sheds must be zero).
    pub fn overload_storm() -> Scenario {
        Scenario {
            name: "overload_storm",
            shed: true,
            hi_clients: 2,
            // Enough closed-loop Batch submitters that their collective
            // in-flight jobs alone outrun the 80ms default deadline —
            // the storm *must* shed to keep its promises.
            clients: 24,
            jobs_per_client: 10,
            queue_cap: 32,
            default_deadline_ms: 80,
            cancel_pm: 50,
            dup_pm: 100,
            late_dup_pm: 0,
            nokey_pm: 100,
            explicit_deadline_pm: 0,
            deadline_ms: (150, 250),
            wedge_pm: 0,
            fail_pm: 30,
            exec_ns: (4_000_000, 12_000_000),
            think_ns: (50_000, 500_000),
            ..Scenario::base()
        }
    }

    /// Every scenario class, sweep order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::fault_storm(),
            Scenario::partition_heal(),
            Scenario::slow_client(),
            Scenario::cancel_storm(),
            Scenario::overload_storm(),
        ]
    }

    /// Look a class up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name == name)
    }

    /// A per-scenario seed salt (FNV-1a over the name) so the same seed
    /// explores different schedules in each class.
    pub fn salt(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The serving-core construction knobs.
    pub fn core_config(&self) -> SimCoreConfig {
        SimCoreConfig {
            queue_cap: self.queue_cap,
            default_deadline_ms: self.default_deadline_ms,
            dedup: DedupConfig {
                cap: self.dedup_cap,
                ttl_ns: self.result_ttl_ms.max(1) * 1_000_000,
            },
            shed: self.shed,
        }
    }

    /// Draw one connection's duplex link.
    pub fn link(&self, rng: &mut SmallRng) -> DuplexLink {
        let (lo, hi) = self.link_delay_ns;
        let up = rng.gen_range(lo, hi + 1);
        let down = rng.gen_range(lo, hi + 1);
        DuplexLink {
            up: LinkDir::new(up, self.link_jitter_ns),
            down: LinkDir::new(down, self.link_jitter_ns),
        }
    }

    /// Draw client `i`'s profile.  Client 0 is the controller; the last
    /// `hammers` clients are stats hammers.
    pub fn profile(&self, i: usize, rng: &mut SmallRng) -> ClientProfile {
        let hammer = i != 0 && i >= self.clients.saturating_sub(self.hammers);
        // Clients 1..=hi_clients run the Hi lane with explicit tight
        // deadlines; everyone else is Batch in a mixed-priority run,
        // Normal (the wire default) otherwise.
        let hi = !hammer && i != 0 && i <= self.hi_clients;
        let priority = match (self.hi_clients, hi) {
            (0, _) => 0,
            (_, true) => 1,
            (_, false) => 2,
        };
        let (alo, ahi) = self.ack_delay_ns;
        ClientProfile {
            jobs: self.jobs_per_client,
            priority,
            cancel_pm: self.cancel_pm,
            dup_pm: self.dup_pm,
            late_dup_pm: self.late_dup_pm,
            nokey_pm: if hi { 0 } else { self.nokey_pm },
            explicit_deadline_pm: if hi { 1000 } else { self.explicit_deadline_pm },
            deadline_ms: self.deadline_ms,
            think_ns: if hi {
                // The Hi trickle: an order of magnitude slower than the
                // saturating Batch flood.
                (self.think_ns.0 * 10, self.think_ns.1 * 10)
            } else {
                self.think_ns
            },
            ack_delay_ns: if hammer {
                ahi
            } else {
                rng.gen_range(alo, ahi + 1)
            },
            max_retries: self.max_retries,
            idem_base: (i as u64 + 1) << 32,
            controller: i == 0,
            shutdown_early_pm: self.shutdown_early_pm,
            hammer: hammer.then_some(Hammer {
                bursts: self.hammer_bursts,
                pipeline: self.hammer_pipeline,
            }),
        }
    }

    /// The connections a partition cuts (never the controller's).
    pub fn partition_set(&self) -> Vec<u64> {
        (2..=self.clients as u64)
            .take(self.partition_conns)
            .collect()
    }
}

/// Counter digest of one run (from the sim's own metrics registry and
/// table — the same instruments production exports).
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// `serve.submit.accepted`.
    pub accepted: u64,
    /// `serve.submit.rejected`.
    pub rejected: u64,
    /// `serve.jobs.completed`.
    pub completed: u64,
    /// `serve.jobs.failed`.
    pub failed: u64,
    /// `serve.jobs.cancelled`.
    pub cancelled: u64,
    /// `serve.jobs.timed_out`.
    pub timed_out: u64,
    /// `serve.submit.idem_hits`.
    pub idem_hits: u64,
    /// `watchdog.escalations`.
    pub escalations: u64,
    /// `watchdog.deadline_fired`.
    pub deadline_fired: u64,
    /// `serve.dedup.evictions`.
    pub dedup_evictions: u64,
    /// Duplicates refused while the original was unadmitted (the race
    /// window the PR 7 fix closes).
    pub idem_pending_hits: u64,
    /// Stagings unwound after failed admission.
    pub retractions: u64,
    /// `serve.sched.sheds.*` total (admission-time deadline sheds).
    pub sheds: u64,
    /// Client-side `ShedDeadline` responses received.
    pub client_sheds: u64,
    /// Double-terminal transitions observed (must be 0).
    pub double_terminal: u64,
    /// Client-side `JobResult`s received.
    pub resolved: u64,
    /// Client-side `Stats` responses received.
    pub stats_seen: u64,
    /// Jobs clients gave up on after max retries.
    pub gave_up: u64,
    /// Jobs abandoned to a drain refusal.
    pub abandoned: u64,
    /// Events processed.
    pub events: u64,
    /// Final virtual time, ms.
    pub virtual_ms: u64,
}

impl SimStats {
    /// Fold another run's counters into this digest (for sweep totals;
    /// `virtual_ms` takes the max rather than the sum).
    pub fn accumulate(&mut self, o: &SimStats) {
        self.accepted += o.accepted;
        self.rejected += o.rejected;
        self.completed += o.completed;
        self.failed += o.failed;
        self.cancelled += o.cancelled;
        self.timed_out += o.timed_out;
        self.idem_hits += o.idem_hits;
        self.escalations += o.escalations;
        self.deadline_fired += o.deadline_fired;
        self.dedup_evictions += o.dedup_evictions;
        self.idem_pending_hits += o.idem_pending_hits;
        self.retractions += o.retractions;
        self.sheds += o.sheds;
        self.client_sheds += o.client_sheds;
        self.double_terminal += o.double_terminal;
        self.resolved += o.resolved;
        self.stats_seen += o.stats_seen;
        self.gave_up += o.gave_up;
        self.abandoned += o.abandoned;
        self.events += o.events;
        self.virtual_ms = self.virtual_ms.max(o.virtual_ms);
    }
}

/// The outcome of one `(scenario, seed)` run.
#[derive(Debug)]
pub struct SimReport {
    /// The seed (reproduces the run exactly).
    pub seed: u64,
    /// Scenario class name.
    pub scenario: &'static str,
    /// Invariant breaches; empty means the run passed.
    pub violations: Vec<String>,
    /// Counter digest.
    pub stats: SimStats,
    /// The event trace, when captured.
    pub trace: Option<String>,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Build, run, and digest one `(scenario, seed)` world.
pub fn run_scenario(sc: Scenario, seed: u64, capture_trace: bool) -> SimReport {
    let name = sc.name;
    let mut w = World::new(sc, seed, capture_trace);
    let (violations, trace) = w.run();
    let core = w.core();
    let m = core.metrics();
    let t = core.table();
    let stats = SimStats {
        accepted: m.accepted.get(),
        rejected: m.rejected.get(),
        completed: m.completed.get(),
        failed: m.failed.get(),
        cancelled: m.cancelled.get(),
        timed_out: m.timed_out.get(),
        idem_hits: m.idem_hits.get(),
        escalations: m.wd_escalations.get(),
        deadline_fired: m.wd_deadline_fired.get(),
        dedup_evictions: m.dedup_evictions.get(),
        idem_pending_hits: t.idem_pending_hits(),
        retractions: t.retractions(),
        sheds: m.sched_sheds.iter().map(|c| c.get()).sum(),
        client_sheds: w.clients().iter().map(|c| c.shed).sum(),
        double_terminal: t.double_terminal(),
        resolved: w.clients().iter().map(|c| c.resolved).sum(),
        stats_seen: w.clients().iter().map(|c| c.stats_seen).sum(),
        gave_up: w.clients().iter().map(|c| u64::from(c.gave_up)).sum(),
        abandoned: w.clients().iter().map(|c| u64::from(c.abandoned)).sum(),
        events: w.events(),
        virtual_ms: w.virtual_ns() / 1_000_000,
    };
    SimReport {
        seed,
        scenario: name,
        violations,
        stats,
        trace,
    }
}
