//! # romp-sim — deterministic whole-system simulation of the serve stack
//!
//! PR 6's chaos tests threw real threads, real sockets and a real clock
//! at the server and hoped the interesting interleavings showed up.
//! This crate removes the hope: the **entire serving stack runs inside
//! one seeded, single-threaded event loop on a virtual clock**, in the
//! style of FoundationDB's simulation testing and madsim.  A run is a
//! pure function of `(scenario, seed)` — same seed, byte-identical
//! event trace — so any failing schedule in a million-seed sweep is
//! reproduced exactly by re-running its seed, and fixed bugs stay fixed
//! as pinned-seed regression tests.
//!
//! What is real and what is modelled:
//!
//! * **Real**: the wire protocol and frame codecs, `RecvBuf`/`SendBuf`
//!   reassembly, [`romp_serve::session`]'s `route_frames` + `ServeCore`
//!   policy (admission, idempotency, batch admission, await parking,
//!   cancel, drain), the [`romp_serve::lifecycle::JobTable`] (deadlines,
//!   sweep, dedup bounds), the [`romp_serve::queue::JobQueue`], and the
//!   `serve.*` metrics — the exact code production runs.
//! * **Modelled**: threads (event sources), sockets ([`net`]: seeded
//!   delays, ordered delivery, partitions, write windows), kernel
//!   execution (seeded durations/outcomes, with `mca-mrapi` fault-plan
//!   probes deciding failures), and time itself
//!   ([`mca_platform::VirtualClock`]).
//!
//! The [`scenario`] module defines four storm classes and the invariant
//! checks every seed must satisfy — no accepted job dropped, no double
//! terminal state, duplicate submissions never yield two jobs, every
//! parked await answered, bounded dedup map, graceful drain always
//! completes.  The `simstorm` binary sweeps seeds for CI.

#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod net;
pub mod scenario;
pub mod sched;
pub mod world;

pub use crate::core::{SimCore, SimCoreConfig};
pub use client::{ClientProfile, SimClient};
pub use net::{DuplexLink, LinkDir, Payload, SimNet};
pub use scenario::{run_scenario, Scenario, SimReport, SimStats};
pub use sched::EventQueue;
pub use world::World;
