//! The seeded virtual-time event scheduler.
//!
//! One binary heap keyed on `(virtual_ns, insertion_seq)`.  The sequence
//! number makes same-timestamp pops deterministic — ties resolve in
//! insertion order, never by allocator or hash accidents — which is the
//! property the whole simulator's "same seed ⇒ byte-identical trace"
//! guarantee rests on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry (internal; min-heap via reversed `Ord`).
struct Entry<E> {
    at_ns: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `ev` at absolute virtual time `at_ns`.
    pub fn push(&mut self, at_ns: u64, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at_ns, seq, ev });
    }

    /// Pop the earliest event: `(virtual_ns, insertion_seq, event)`.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        self.heap.pop().map(|e| (e.at_ns, e.seq, e.ev))
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_insertion_tiebreak() {
        let mut q = EventQueue::new();
        q.push(50, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(30, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
    }

    #[test]
    fn same_schedule_pops_identically() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                q.push((i * 37) % 50, i);
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
