//! Simulated clients: seeded stop-and-wait state machines speaking the
//! real wire protocol.
//!
//! Each client owns one connection and drives a job loop — submit
//! (sometimes as a duplicate burst, exercising the idempotency map),
//! maybe cancel, await the result, think, repeat — plus two specialists:
//! a *stats hammer* that pipelines bursts of `Stats` requests to exercise
//! write backpressure, and the *controller*, which sends `Shutdown` once
//! every client is done (or early, when the scenario says so) so each run
//! ends with a graceful drain.
//!
//! Clients are pure state machines: they never touch the event queue or
//! the network directly, they return [`ClientCmd`]s for the world to
//! apply.  Every response is checked against an expectation queue;
//! anything unexplainable — a lost accepted job, a duplicate burst
//! answered with two distinct ids, a malformed server frame — is recorded
//! as a violation that fails the run.

use std::collections::VecDeque;

use mca_sync::SmallRng;
use romp_epcc::Construct;
use romp_serve::protocol::{ErrorCode, Request, Response};
use romp_serve::reactor::RecvBuf;
use romp_serve::JobSpec;

/// An action the world applies on the client's behalf.
#[derive(Debug)]
pub enum ClientCmd {
    /// Send bytes on the client→server link.
    Send(Vec<u8>),
    /// Close the client's write side.
    SendEof,
    /// Schedule a `ClientWake` at this absolute virtual time.
    WakeAt(u64),
}

/// The stats-hammer specialisation (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Hammer {
    /// Bursts to send before finishing.
    pub bursts: u32,
    /// Pipelined `Stats` requests per burst.
    pub pipeline: u32,
}

/// Per-client behaviour knobs (probabilities are per-mille).
#[derive(Debug, Clone)]
pub struct ClientProfile {
    /// Jobs to run to completion (ignored by hammers).
    pub jobs: u32,
    /// Submit priority (0 = Normal, 1 = Hi, 2+ = Batch).
    pub priority: u8,
    /// P(cancel the job after acceptance).
    pub cancel_pm: u64,
    /// P(send the submit twice back-to-back in one payload).
    pub dup_pm: u64,
    /// P(re-send the submit *after* acceptance, alongside the await).
    pub late_dup_pm: u64,
    /// P(submit without an idempotency key).
    pub nokey_pm: u64,
    /// P(request an explicit deadline instead of the server default).
    pub explicit_deadline_pm: u64,
    /// Explicit deadline range, ms.
    pub deadline_ms: (u32, u32),
    /// Think time between jobs, virtual ns.
    pub think_ns: (u64, u64),
    /// Delay before the client "reads" a delivery (frees the server's
    /// write window), virtual ns.
    pub ack_delay_ns: u64,
    /// Rejected-submit retries before giving the job up.
    pub max_retries: u32,
    /// Idempotency key base (disjoint per client).
    pub idem_base: u64,
    /// Whether this client is the shutdown controller.
    pub controller: bool,
    /// Controller only: P(send `Shutdown` right after its own jobs,
    /// while other clients are still mid-flight).
    pub shutdown_early_pm: u64,
    /// Stats-hammer mode.
    pub hammer: Option<Hammer>,
}

/// What a pending request slot is waiting for.
#[derive(Debug)]
enum Expect {
    Submit,
    LateDup(u64),
    Cancel(u64),
    Await(u64),
    Stats,
    Shutdown,
}

/// One simulated client (see module docs).
pub struct SimClient {
    /// The connection this client owns.
    pub conn: u64,
    /// Behaviour knobs.
    pub profile: ClientProfile,
    /// Inbound frame reassembly (the real decoder).
    rbuf: RecvBuf,
    expects: VecDeque<Expect>,
    burst_left: u32,
    burst_ids: Vec<u64>,
    burst_retry_ms: Option<u32>,
    burst_drained: bool,
    burst_shed: bool,
    retries: u32,
    jobs_done: u32,
    hammer_done: u32,
    /// All work finished (controller may still owe the shutdown).
    pub done: bool,
    /// This client has sent `Shutdown` (controller paths).
    pub sent_shutdown: bool,
    /// Awaiting the `Draining` answer to our `Shutdown`.
    pub shutdown_pending: bool,
    /// Write side closed.
    pub eof_sent: bool,
    /// Invariant breaches observed by this client.
    pub violations: Vec<String>,
    /// Jobs resolved with a `JobResult`.
    pub resolved: u64,
    /// Resolved jobs whose result was `ok`.
    pub resolved_ok: u64,
    /// Jobs abandoned after `max_retries` rejections.
    pub gave_up: u32,
    /// Jobs abandoned because the server began draining.
    pub abandoned: u32,
    /// `ShedDeadline` refusals received (the job is abandoned, never
    /// retried — a shed is a verdict, not backpressure).
    pub shed: u64,
    /// `Stats` responses received.
    pub stats_seen: u64,
}

impl SimClient {
    /// A fresh client on connection `conn`.
    pub fn new(conn: u64, profile: ClientProfile) -> Self {
        SimClient {
            conn,
            profile,
            rbuf: RecvBuf::new(),
            expects: VecDeque::new(),
            burst_left: 0,
            burst_ids: Vec::new(),
            burst_retry_ms: None,
            burst_drained: false,
            burst_shed: false,
            retries: 0,
            jobs_done: 0,
            hammer_done: 0,
            done: false,
            sent_shutdown: false,
            shutdown_pending: false,
            eof_sent: false,
            violations: Vec::new(),
            resolved: 0,
            resolved_ok: 0,
            gave_up: 0,
            abandoned: 0,
            shed: 0,
            stats_seen: 0,
        }
    }

    fn roll(&self, rng: &mut SmallRng, pm: u64) -> bool {
        rng.gen_range(0, 1000) < pm
    }

    fn violation(&mut self, msg: String) {
        self.violations
            .push(format!("client conn={}: {msg}", self.conn));
    }

    /// Wake: start the next burst / job if idle.
    pub fn on_wake(&mut self, now: u64, rng: &mut SmallRng) -> Vec<ClientCmd> {
        let mut cmds = Vec::new();
        if self.done || self.eof_sent || !self.expects.is_empty() {
            return cmds;
        }
        if self.profile.hammer.is_some() {
            self.hammer_burst(&mut cmds);
        } else if self.jobs_done < self.profile.jobs {
            self.submit_burst(now, rng, &mut cmds);
        }
        cmds
    }

    fn hammer_burst(&mut self, cmds: &mut Vec<ClientCmd>) {
        let h = self.profile.hammer.expect("hammer profile");
        let mut bytes = Vec::new();
        for _ in 0..h.pipeline {
            bytes.extend_from_slice(&Request::Stats.encode());
            self.expects.push_back(Expect::Stats);
        }
        cmds.push(ClientCmd::Send(bytes));
    }

    fn submit_burst(&mut self, now: u64, rng: &mut SmallRng, cmds: &mut Vec<ClientCmd>) {
        let _ = now;
        let idem_key = if self.roll(rng, self.profile.nokey_pm) {
            0
        } else {
            self.profile.idem_base + u64::from(self.jobs_done) + 1
        };
        let deadline_ms = if self.roll(rng, self.profile.explicit_deadline_pm) {
            let (lo, hi) = self.profile.deadline_ms;
            rng.gen_range(u64::from(lo), u64::from(hi) + 1) as u32
        } else {
            0
        };
        let req = Request::Submit {
            spec: JobSpec::Epcc {
                construct: Construct::Barrier,
                threads: 2,
                inner_reps: 8,
            },
            deadline_ms,
            idem_key,
            // Cycle through a few shard keys (0 = no preference) so the
            // sharded submit path is exercised under simulation.
            affinity: u64::from(self.jobs_done % 4),
            priority: self.profile.priority,
        };
        let mut bytes = req.encode();
        self.expects.push_back(Expect::Submit);
        self.burst_left = 1;
        if idem_key != 0 && self.roll(rng, self.profile.dup_pm) {
            // The duplicate-burst probe: both copies land in one service
            // pass, the second must answer Rejected (pending) or the
            // same id (admitted) — never a second job.
            bytes.extend_from_slice(&req.encode());
            self.expects.push_back(Expect::Submit);
            self.burst_left = 2;
        }
        self.burst_ids.clear();
        self.burst_retry_ms = None;
        self.burst_drained = false;
        self.burst_shed = false;
        cmds.push(ClientCmd::Send(bytes));
    }

    /// Bytes delivered from the server.
    pub fn on_bytes(&mut self, now: u64, rng: &mut SmallRng, bytes: &[u8]) -> Vec<ClientCmd> {
        let mut cmds = Vec::new();
        self.rbuf.extend(bytes);
        loop {
            match self.rbuf.next_frame() {
                Ok(Some(body)) => match Response::decode(&body) {
                    Ok(resp) => self.handle_response(now, rng, resp, &mut cmds),
                    Err(e) => {
                        self.violation(format!("server sent undecodable response: {e}"));
                        break;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    self.violation(format!("server sent hostile frame: {e}"));
                    break;
                }
            }
        }
        cmds
    }

    /// The server closed the connection.
    pub fn on_server_eof(&mut self) {
        if !self.done || self.shutdown_pending {
            self.violation("server closed the connection mid-conversation".into());
        }
    }

    /// Whether `resp` can answer `exp`.
    fn compatible(exp: &Expect, resp: &Response) -> bool {
        match exp {
            Expect::Submit | Expect::LateDup(_) => matches!(
                resp,
                Response::Accepted { .. }
                    | Response::Rejected { .. }
                    | Response::ShedDeadline { .. }
                    | Response::Error { .. }
            ),
            Expect::Cancel(j) => match resp {
                Response::Status { job, .. } => job == j,
                Response::Error { .. } => true,
                _ => false,
            },
            Expect::Await(j) => match resp {
                Response::JobResult { job, .. } => job == j,
                Response::Error { .. } => true,
                _ => false,
            },
            Expect::Stats => matches!(resp, Response::Stats { .. } | Response::Error { .. }),
            Expect::Shutdown => matches!(resp, Response::Draining { .. }),
        }
    }

    /// Parked awaits answer in completion order, not request order, so
    /// match the response against the first *compatible* expectation.
    fn take_expect(&mut self, resp: &Response) -> Option<Expect> {
        let pos = self
            .expects
            .iter()
            .position(|e| Self::compatible(e, resp))?;
        self.expects.remove(pos)
    }

    fn handle_response(
        &mut self,
        now: u64,
        rng: &mut SmallRng,
        resp: Response,
        cmds: &mut Vec<ClientCmd>,
    ) {
        let Some(exp) = self.take_expect(&resp) else {
            self.violation(format!("unsolicited response {resp:?}"));
            return;
        };
        match exp {
            Expect::Submit => {
                self.burst_left = self.burst_left.saturating_sub(1);
                match resp {
                    Response::Accepted { job } => self.burst_ids.push(job),
                    Response::Rejected { retry_after_ms } => {
                        let prev = self.burst_retry_ms.unwrap_or(0);
                        self.burst_retry_ms = Some(prev.max(retry_after_ms));
                    }
                    Response::ShedDeadline { .. } => {
                        self.shed += 1;
                        self.burst_shed = true;
                    }
                    Response::Error {
                        code: ErrorCode::Draining,
                        ..
                    } => self.burst_drained = true,
                    other => self.violation(format!("submit answered {other:?}")),
                }
                if self.burst_left == 0 {
                    self.finish_burst(now, rng, cmds);
                }
            }
            Expect::LateDup(orig) => {
                match resp {
                    Response::Accepted { job } if job == orig => {}
                    Response::Accepted { job } => {
                        // The original was already consumed: the late dup
                        // became a real job; it must be resolved too.
                        self.expects.push_back(Expect::Await(job));
                        cmds.push(ClientCmd::Send(Request::Await { job }.encode()));
                    }
                    Response::Rejected { .. }
                    | Response::ShedDeadline { .. }
                    | Response::Error {
                        code: ErrorCode::Draining,
                        ..
                    } => {}
                    other => self.violation(format!("late dup answered {other:?}")),
                }
                // If this was the last resolution-bearing expectation,
                // the logical job is finished (see `Expect::Await`).
                if self.resolution_pending() == 0 {
                    self.advance_job(now, rng, cmds);
                }
            }
            Expect::Cancel(job) => match resp {
                Response::Status { .. } => {}
                other => self.violation(format!("cancel of job {job} answered {other:?}")),
            },
            Expect::Await(job) => match resp {
                Response::JobResult { ok, .. } => {
                    self.resolved += 1;
                    if ok {
                        self.resolved_ok += 1;
                    }
                    if self.resolution_pending() == 0 {
                        self.advance_job(now, rng, cmds);
                    }
                }
                other => {
                    self.violation(format!("accepted job {job} lost: await answered {other:?}"));
                    if self.resolution_pending() == 0 {
                        self.advance_job(now, rng, cmds);
                    }
                }
            },
            Expect::Stats => match resp {
                Response::Stats { json } => {
                    if !json.starts_with('{') {
                        self.violation("stats response is not a JSON object".into());
                    }
                    self.stats_seen += 1;
                    if self.expects.is_empty() {
                        self.hammer_done += 1;
                        let h = self.profile.hammer.expect("hammer profile");
                        if self.hammer_done >= h.bursts {
                            self.complete_work(rng, cmds);
                        } else {
                            let (lo, hi) = self.profile.think_ns;
                            cmds.push(ClientCmd::WakeAt(now + rng.gen_range(lo, hi + 1)));
                        }
                    }
                }
                other => self.violation(format!("stats answered {other:?}")),
            },
            Expect::Shutdown => {
                self.shutdown_pending = false;
                if !self.eof_sent {
                    self.eof_sent = true;
                    cmds.push(ClientCmd::SendEof);
                }
            }
        }
    }

    /// Expectations that still gate this logical job's resolution: a
    /// pending `Await`, or a late duplicate whose answer may spawn one.
    fn resolution_pending(&self) -> usize {
        self.expects
            .iter()
            .filter(|e| matches!(e, Expect::Await(_) | Expect::LateDup(_)))
            .count()
    }

    fn finish_burst(&mut self, now: u64, rng: &mut SmallRng, cmds: &mut Vec<ClientCmd>) {
        if !self.burst_ids.is_empty() {
            if self.burst_ids.iter().any(|&id| id != self.burst_ids[0]) {
                self.violation(format!(
                    "duplicate submit burst yielded distinct ids {:?} — one logical job ran twice",
                    self.burst_ids
                ));
            }
            let job = self.burst_ids[0];
            self.burst_ids.clear();
            let mut bytes = Vec::new();
            if self.roll(rng, self.profile.cancel_pm) {
                bytes.extend_from_slice(&Request::Cancel { job }.encode());
                self.expects.push_back(Expect::Cancel(job));
            }
            bytes.extend_from_slice(&Request::Await { job }.encode());
            self.expects.push_back(Expect::Await(job));
            if self.roll(rng, self.profile.late_dup_pm) {
                let req = Request::Submit {
                    spec: JobSpec::Epcc {
                        construct: Construct::Barrier,
                        threads: 2,
                        inner_reps: 8,
                    },
                    deadline_ms: 0,
                    idem_key: self.profile.idem_base + u64::from(self.jobs_done) + 1,
                    affinity: 0,
                    priority: self.profile.priority,
                };
                bytes.extend_from_slice(&req.encode());
                self.expects.push_back(Expect::LateDup(job));
            }
            cmds.push(ClientCmd::Send(bytes));
        } else if self.burst_drained {
            self.abandoned += self.profile.jobs - self.jobs_done;
            self.complete_work(rng, cmds);
        } else if self.burst_shed {
            // Shed at admission: the job is abandoned, not retried —
            // resubmitting the same deadline into the same backlog is
            // exactly what the gate just refused.
            self.advance_job(now, rng, cmds);
        } else if let Some(ms) = self.burst_retry_ms.take() {
            self.retries += 1;
            if self.retries > self.profile.max_retries {
                self.gave_up += 1;
                self.advance_job(now, rng, cmds);
            } else {
                // The production client's jittered backoff, in virtual time.
                let base = u64::from(ms.clamp(1, 250)) * 1_000_000;
                let wake = now + rng.gen_range(base / 2, base + base / 2 + 1);
                cmds.push(ClientCmd::WakeAt(wake));
            }
        } else {
            self.violation("submit burst resolved with no outcome".into());
            self.advance_job(now, rng, cmds);
        }
    }

    fn advance_job(&mut self, now: u64, rng: &mut SmallRng, cmds: &mut Vec<ClientCmd>) {
        self.jobs_done += 1;
        self.retries = 0;
        if self.jobs_done >= self.profile.jobs {
            self.complete_work(rng, cmds);
        } else {
            let (lo, hi) = self.profile.think_ns;
            cmds.push(ClientCmd::WakeAt(now + rng.gen_range(lo, hi + 1)));
        }
    }

    fn complete_work(&mut self, rng: &mut SmallRng, cmds: &mut Vec<ClientCmd>) {
        self.done = true;
        if self.profile.controller {
            if self.roll(rng, self.profile.shutdown_early_pm) {
                self.send_shutdown(cmds);
            }
            // Otherwise the world triggers the shutdown once every
            // client is done.
        } else if !self.eof_sent {
            self.eof_sent = true;
            cmds.push(ClientCmd::SendEof);
        }
    }

    /// Send `Shutdown` (controller; idempotent).
    pub fn send_shutdown(&mut self, cmds: &mut Vec<ClientCmd>) {
        if self.sent_shutdown || self.eof_sent {
            return;
        }
        self.sent_shutdown = true;
        self.shutdown_pending = true;
        self.expects.push_back(Expect::Shutdown);
        cmds.push(ClientCmd::Send(Request::Shutdown.encode()));
    }

    /// Whether this client still owes or expects traffic.
    pub fn quiescent(&self) -> bool {
        self.done && !self.shutdown_pending && self.expects.is_empty()
    }
}
