//! The deterministic world: one seeded event loop driving the whole
//! serve stack on a virtual clock.
//!
//! Everything that is a thread in production is an event source here:
//!
//! * the **reactor** becomes per-connection `NetToServer` deliveries
//!   feeding the real [`Session`]/[`route_frames`] seam, with a per-link
//!   write window standing in for the socket send buffer (the window
//!   writer returns `WouldBlock` exactly like a full socket, so
//!   `SendBuf` backpressure and `decode_deferred` run their production
//!   paths);
//! * the **dispatcher** becomes `DispatcherPop`/`JobDone` events over
//!   the real [`JobQueue`](romp_serve::JobQueue) and [`JobTable`](romp_serve::JobTable) — execution itself is
//!   modelled (a seeded duration and outcome, with `mca-mrapi`
//!   [`FaultPlan`] probes deciding failures), since the simulation
//!   tests the *serving* machinery, not the kernels;
//! * the **watchdog** becomes a `WatchdogTick` event running the real
//!   [`JobTable::sweep`](romp_serve::JobTable::sweep) — deadline kills, escalation, dedup bounds;
//! * each **client** is a seeded state machine from [`crate::client`].
//!
//! Same seed ⇒ same event sequence ⇒ byte-identical trace: all state is
//! in `BTreeMap`s/`Vec`s, ties break on insertion order, and the single
//! [`SmallRng`] is consumed in event order.

use std::collections::BTreeMap;
use std::io::{self, Write};

use mca_mrapi::{FaultPlan, FaultProbe, FaultSite};
use mca_platform::{Clock, VirtualClock};
use mca_sync::SmallRng;
use romp::CancelToken;
use romp_serve::lifecycle::terminal_for;
use romp_serve::session::{route_frames, AwaitDisposition, PendingResp, ServeCore, Session};
use romp_serve::{JobOutcome, JobState};

use crate::client::{ClientCmd, SimClient};
use crate::core::SimCore;
use crate::net::{Payload, SimNet};
use crate::scenario::Scenario;
use crate::sched::EventQueue;

/// Cooperative-cancel unwind latency: virtual ns from a cancelled
/// running job noticing the token to reaching its terminal state.
const UNWIND_NS: u64 = 200_000;

/// Global event-count backstop (a livelocked schedule must terminate
/// with a violation, not hang the sweep).
const MAX_EVENTS: u64 = 3_000_000;

/// Everything that can happen in the simulated world.
#[derive(Debug)]
enum Event {
    /// A client wakes (start, think-time expiry, or retry backoff).
    ClientWake(usize),
    /// Delivery on a connection's client→server direction.
    NetToServer(u64, Payload),
    /// Delivery on a connection's server→client direction.
    NetToClient(usize, Payload),
    /// The client read `n` delivered bytes: the server's write window
    /// for the connection regains that budget.
    Ack(u64, usize),
    /// The dispatcher looks for the next queued job.
    DispatcherPop,
    /// The running execution identified by `(exec, gen)` finishes.
    JobDone { exec: u64, gen: u64 },
    /// One watchdog sweep.
    WatchdogTick,
    /// Cut the configured connections (both directions).
    PartitionStart,
    /// Heal them, releasing held traffic in order.
    PartitionHeal,
}

/// One server-side connection: the shared session plus the simulated
/// socket send-buffer window.
struct SrvConn {
    sess: Session,
    window: usize,
}

/// The modelled execution of one dispatched job.
struct Running {
    job: u64,
    exec: u64,
    gen: u64,
    cancel: CancelToken,
    /// Job-class label (feeds the per-class service-time EWMA).
    label: String,
    /// Absolute deadline, if the job carries one (the overload
    /// scenario's miss-bound check).
    deadline_ns: Option<u64>,
    /// Outcome if it runs to completion untouched.
    ok: bool,
    panics: bool,
    /// Stuck in an abandoned-lock wait: never finishes on its own, only
    /// deadline → escalation ends it.
    wedged: bool,
    unwinding: bool,
    started_ns: u64,
}

/// `io::Write` over the connection's remaining window: accepts up to
/// `budget` bytes, then `WouldBlock` — a kernel socket buffer in one
/// struct.
struct WindowWriter<'a> {
    budget: &'a mut usize,
    out: Vec<u8>,
}

impl Write for WindowWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if *self.budget == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "window full"));
        }
        let n = buf.len().min(*self.budget);
        self.out.extend_from_slice(&buf[..n]);
        *self.budget -= n;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The assembled world (see module docs).  Drive with [`World::run`].
pub struct World {
    vclock: VirtualClock,
    clock: Clock,
    rng: SmallRng,
    evq: EventQueue<Event>,
    net: SimNet,
    core: SimCore,
    conns: BTreeMap<u64, SrvConn>,
    clients: Vec<SimClient>,
    /// job id → connections with a parked `Await`.
    parked: BTreeMap<u64, Vec<u64>>,
    running: Option<Running>,
    exec_seq: u64,
    dispatcher_done: bool,
    backend_poisoned: bool,
    fault: Option<FaultPlan>,
    sc: Scenario,
    events: u64,
    trace: Option<String>,
    violations: Vec<String>,
}

impl World {
    /// Build a world for `scenario` from `seed`.
    pub fn new(sc: Scenario, seed: u64, capture_trace: bool) -> Self {
        let vclock = VirtualClock::new(0);
        let clock = vclock.clock();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x005E_ED51_0000 ^ sc.salt());
        let core = SimCore::new(clock.clone(), sc.core_config());

        let mut evq = EventQueue::new();
        let mut net = SimNet::new();
        let mut clients = Vec::new();
        let mut conns = BTreeMap::new();
        for i in 0..sc.clients {
            let conn = (i as u64) + 1;
            net.add_link(conn, sc.link(&mut rng));
            conns.insert(
                conn,
                SrvConn {
                    sess: Session::new(),
                    window: sc.window,
                },
            );
            clients.push(SimClient::new(conn, sc.profile(i, &mut rng)));
            // Staggered starts.
            evq.push(rng.gen_range(0, 200_000), Event::ClientWake(i));
        }
        evq.push(sc.watchdog_tick_ms * 1_000_000, Event::WatchdogTick);
        if let Some((start_ms, heal_ms)) = sc.partition_ms {
            evq.push(start_ms * 1_000_000, Event::PartitionStart);
            evq.push(heal_ms * 1_000_000, Event::PartitionHeal);
        }
        let fault = sc.fault_at_ms.map(|at_ms| {
            FaultPlan::new(seed).with_persistent_at(
                FaultSite::MutexLock,
                FaultSite::MutexLock.legal_statuses()[0],
                at_ms * 1_000_000,
                clock.clone(),
            )
        });

        World {
            vclock,
            clock,
            rng,
            evq,
            net,
            core,
            conns,
            clients,
            parked: BTreeMap::new(),
            running: None,
            exec_seq: 0,
            dispatcher_done: false,
            backend_poisoned: false,
            fault,
            sc,
            events: 0,
            trace: capture_trace.then(String::new),
            violations: Vec::new(),
        }
    }

    fn trace_line(&mut self, line: &str) {
        if let Some(t) = self.trace.as_mut() {
            t.push_str(line);
            t.push('\n');
        }
    }

    fn now(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Run to quiescence; returns `(violations, trace)` raw material for
    /// the scenario report.
    pub fn run(&mut self) -> (Vec<String>, Option<String>) {
        let horizon_ns = self.sc.horizon_ms * 1_000_000;
        while let Some((t, seq, ev)) = self.evq.pop() {
            if t > horizon_ns {
                self.violations.push(format!(
                    "virtual horizon exceeded at t={t}ns ({} events): {ev:?} still pending",
                    self.events
                ));
                break;
            }
            self.events += 1;
            if self.events > MAX_EVENTS {
                self.violations.push(format!(
                    "event backstop hit at t={t}ns: schedule never quiesced"
                ));
                break;
            }
            self.vclock.advance_to(t);
            if self.trace.is_some() {
                let line = format!(
                    "t={t} seq={seq} ev={ev:?} q={} live={} running={:?}",
                    self.core.queue().len(),
                    self.core.table().live_jobs(),
                    self.running.as_ref().map(|r| r.job),
                );
                self.trace_line(&line);
            }
            self.dispatch_event(ev);
        }
        self.finish_checks();
        (std::mem::take(&mut self.violations), self.trace.take())
    }

    fn dispatch_event(&mut self, ev: Event) {
        match ev {
            Event::ClientWake(i) => {
                let now = self.now();
                let cmds = self.clients[i].on_wake(now, &mut self.rng);
                self.apply_cmds(i, cmds);
                self.after_core_interaction();
            }
            Event::NetToServer(conn, payload) => {
                if let Some(c) = self.conns.get_mut(&conn) {
                    match payload {
                        Payload::Bytes(b) => c.sess.rbuf.extend(&b),
                        Payload::Eof => c.sess.eof = true,
                    }
                }
                self.service_conn(conn);
            }
            Event::NetToClient(i, payload) => {
                let now = self.now();
                let conn = self.clients[i].conn;
                match payload {
                    Payload::Bytes(b) => {
                        let n = b.len();
                        let cmds = self.clients[i].on_bytes(now, &mut self.rng, &b);
                        self.apply_cmds(i, cmds);
                        let ack_at = now + self.clients[i].profile.ack_delay_ns;
                        self.evq.push(ack_at, Event::Ack(conn, n));
                    }
                    Payload::Eof => self.clients[i].on_server_eof(),
                }
                self.after_core_interaction();
                self.check_all_done();
            }
            Event::Ack(conn, n) => {
                if let Some(c) = self.conns.get_mut(&conn) {
                    c.window += n;
                }
                self.flush_conn(conn);
                // The production deferral path: window freed, revisit
                // buffered frames without a new read event.
                let deferred = self
                    .conns
                    .get(&conn)
                    .map(|c| {
                        c.sess.decode_deferred
                            && !c.sess.closed
                            && !c.sess.close_after_flush
                            && !c.sess.backpressured()
                    })
                    .unwrap_or(false);
                if deferred {
                    self.service_conn(conn);
                }
            }
            Event::DispatcherPop => self.dispatcher_pop(),
            Event::JobDone { exec, gen } => self.job_done(exec, gen),
            Event::WatchdogTick => self.watchdog_tick(),
            Event::PartitionStart => {
                let now = self.now();
                for conn in self.sc.partition_set() {
                    let link = self.net.link(conn);
                    link.up.partition();
                    link.down.partition();
                }
                self.trace_line(&format!("t={now} partition start"));
            }
            Event::PartitionHeal => {
                let now = self.now();
                for conn in self.sc.partition_set() {
                    let (ups, downs) = {
                        let link = self.net.link(conn);
                        let ups = link.up.heal(now, &mut self.rng);
                        let downs = link.down.heal(now, &mut self.rng);
                        (ups, downs)
                    };
                    let client = (conn - 1) as usize;
                    for (at, p) in ups {
                        self.evq.push(at, Event::NetToServer(conn, p));
                    }
                    for (at, p) in downs {
                        self.evq.push(at, Event::NetToClient(client, p));
                    }
                }
                self.trace_line(&format!("t={now} partition heal"));
            }
        }
    }

    fn apply_cmds(&mut self, client_idx: usize, cmds: Vec<ClientCmd>) {
        let conn = self.clients[client_idx].conn;
        for cmd in cmds {
            let now = self.now();
            match cmd {
                ClientCmd::Send(bytes) => {
                    if let Some((at, p)) =
                        self.net
                            .link(conn)
                            .up
                            .send(now, &mut self.rng, Payload::Bytes(bytes))
                    {
                        self.evq.push(at, Event::NetToServer(conn, p));
                    }
                }
                ClientCmd::SendEof => {
                    if let Some((at, p)) =
                        self.net
                            .link(conn)
                            .up
                            .send(now, &mut self.rng, Payload::Eof)
                    {
                        self.evq.push(at, Event::NetToServer(conn, p));
                    }
                }
                ClientCmd::WakeAt(at) => self.evq.push(at, Event::ClientWake(client_idx)),
            }
        }
    }

    /// Once every client has finished its work, the controller sends
    /// `Shutdown` so the run always exercises the graceful drain.
    fn check_all_done(&mut self) {
        if self.clients.iter().any(|c| c.sent_shutdown) {
            return;
        }
        if !self.clients.iter().all(|c| c.done) {
            return;
        }
        let idx = self
            .clients
            .iter()
            .position(|c| c.profile.controller)
            .expect("a controller exists");
        let mut cmds = Vec::new();
        self.clients[idx].send_shutdown(&mut cmds);
        self.apply_cmds(idx, cmds);
    }

    /// One service pass over a connection: decode frames through the
    /// shared seam, admit the submit batch, stage responses, flush.
    /// Mirrors the production reactor's `service_pass`.
    fn service_conn(&mut self, conn_id: u64) {
        let Some(mut c) = self.conns.remove(&conn_id) else {
            return;
        };
        loop {
            if c.sess.closed || c.sess.close_after_flush {
                break;
            }
            if c.sess.backpressured() {
                if c.sess.rbuf.pending() > 0 {
                    c.sess.decode_deferred = true;
                }
                break;
            }
            c.sess.decode_deferred = false;
            let mut batch = Vec::new();
            let mut parked_jobs = Vec::new();
            let staged = route_frames(&self.core, &mut c.sess, &mut batch, &mut parked_jobs);
            let decoded_any = !staged.is_empty() || !batch.is_empty() || !parked_jobs.is_empty();
            for j in parked_jobs {
                self.parked.entry(j).or_default().push(conn_id);
            }
            if !batch.is_empty() {
                self.core.metrics().reactor_batch.record(batch.len() as u64);
            }
            let admitted = self.core.admit_batch(batch);
            let mut slots = admitted.into_iter();
            for s in staged {
                let resp = match s {
                    PendingResp::Ready(r) => r,
                    PendingResp::Submit(_) => slots.next().expect("one slot per batched submit"),
                };
                c.sess.wbuf.queue(&resp.encode());
            }
            c.sess.arm_close_if_quiescent();
            if !decoded_any || !c.sess.decode_deferred {
                break;
            }
            // Frame-cap deferral with budget left: keep decoding, as the
            // production reactor does on its deferral revisit.
        }
        self.conns.insert(conn_id, c);
        self.after_core_interaction();
        self.flush_conn(conn_id);
    }

    /// Flush a connection's pending responses into its write window and
    /// onto the down link; handle the flush-then-close arm.
    fn flush_conn(&mut self, conn_id: u64) {
        let Some(mut c) = self.conns.remove(&conn_id) else {
            return;
        };
        if !c.sess.closed && !c.sess.wbuf.is_empty() {
            let mut w = WindowWriter {
                budget: &mut c.window,
                out: Vec::new(),
            };
            // WouldBlock → Blocked; the window writer never errors
            // otherwise, so flush_to cannot fail here.
            let _ = c
                .sess
                .wbuf
                .flush_to(&mut w)
                .expect("window writer never hard-fails");
            if !w.out.is_empty() {
                let now = self.now();
                let client = (conn_id - 1) as usize;
                if let Some((at, p)) =
                    self.net
                        .link(conn_id)
                        .down
                        .send(now, &mut self.rng, Payload::Bytes(w.out))
                {
                    self.evq.push(at, Event::NetToClient(client, p));
                }
            }
        }
        if c.sess.close_after_flush && c.sess.wbuf.is_empty() && !c.sess.closed {
            c.sess.closed = true;
            let now = self.now();
            let client = (conn_id - 1) as usize;
            if let Some((at, p)) =
                self.net
                    .link(conn_id)
                    .down
                    .send(now, &mut self.rng, Payload::Eof)
            {
                self.evq.push(at, Event::NetToClient(client, p));
            }
        }
        self.conns.insert(conn_id, c);
    }

    /// After any pass through the core: deliver cancel-completions,
    /// notice a cancelled running job, and kick the dispatcher if work
    /// is waiting.
    fn after_core_interaction(&mut self) {
        for job in self.core.take_completions() {
            self.deliver_completion(job);
        }
        self.maybe_unwind_running();
        if self.running.is_none() && !self.dispatcher_done && !self.core.queue().is_empty() {
            let now = self.now();
            self.evq.push(now, Event::DispatcherPop);
        }
    }

    /// Answer every parked `Await` on a now-terminal job (the mailbox
    /// broadcast, in event form).
    fn deliver_completion(&mut self, job: u64) {
        let Some(conn_ids) = self.parked.remove(&job) else {
            return;
        };
        for conn_id in conn_ids {
            let ready = {
                let Some(c) = self.conns.get_mut(&conn_id) else {
                    continue;
                };
                if c.sess.closed {
                    continue;
                }
                match self.core.try_complete_await(job) {
                    AwaitDisposition::Ready(resp) => {
                        c.sess.wbuf.queue(&resp.encode());
                        c.sess.arm_close_if_quiescent();
                        true
                    }
                    AwaitDisposition::Pending => {
                        self.parked.entry(job).or_default().push(conn_id);
                        false
                    }
                }
            };
            if ready {
                self.flush_conn(conn_id);
            }
        }
    }

    /// The dispatcher model: pop, gate through `begin_run`, derive the
    /// seeded execution plan, schedule completion.
    fn dispatcher_pop(&mut self) {
        while self.running.is_none() && !self.dispatcher_done {
            let Some(qjob) = self.core.queue().try_pop() else {
                if self.core.queue().is_closed() {
                    self.dispatcher_done = true;
                }
                return;
            };
            let now = self.now();
            let m = self.core.metrics();
            m.lat_queue.record(now.saturating_sub(qjob.enqueued_ns));
            m.queue_depth.set(self.core.queue().len() as u64);
            if !self.core.table().begin_run(qjob.id) {
                // Cancelled or deadline-killed while queued.
                continue;
            }
            self.core.bump_activity();
            let (dur_ns, ok, panics, wedged) = self.plan_exec(qjob.deadline_ns.is_some());
            self.exec_seq += 1;
            let exec = self.exec_seq;
            self.trace_line(&format!(
                "t={now} dispatch job={} dur={dur_ns} ok={ok} panic={panics} wedge={wedged}",
                qjob.id
            ));
            if !wedged {
                self.evq.push(now + dur_ns, Event::JobDone { exec, gen: 0 });
            }
            self.running = Some(Running {
                job: qjob.id,
                exec,
                gen: 0,
                label: qjob.spec.label(),
                deadline_ns: qjob.deadline_ns,
                cancel: qjob.cancel,
                ok,
                panics,
                wedged,
                unwinding: false,
                started_ns: now,
            });
            return;
        }
    }

    /// Seeded execution plan: duration plus one of ok / verification
    /// failure / panic / wedge.  An `mca-mrapi` fault probe (the timed
    /// persistent fault scenarios arm) turns lock acquisitions into
    /// failures once the virtual clock passes the arm time.
    fn plan_exec(&mut self, has_deadline: bool) -> (u64, bool, bool, bool) {
        let dur = self.rng.gen_range(self.sc.exec_ns.0, self.sc.exec_ns.1 + 1);
        let mrapi_fault = self
            .fault
            .as_ref()
            .map(|p| p.decide(FaultSite::MutexLock).fail.is_some())
            .unwrap_or(false);
        let roll = self.rng.gen_range(0, 1000);
        // Wedges model a worker stuck on an abandoned MCA lock: only a
        // deadline (→ escalation) can end one, and a poisoned backend
        // has already fallen back to native sync, which cannot wedge.
        if has_deadline && !self.backend_poisoned && roll < self.sc.wedge_pm {
            return (dur, false, false, true);
        }
        if mrapi_fault || roll < self.sc.wedge_pm + self.sc.fail_pm {
            let panics = self.rng.gen_range(0, 1000) < 300;
            return (dur, false, panics, false);
        }
        (dur, true, false, false)
    }

    /// A modelled execution reached its end (or finished unwinding).
    fn job_done(&mut self, exec: u64, gen: u64) {
        let stale = self
            .running
            .as_ref()
            .map(|r| r.exec != exec || r.gen != gen)
            .unwrap_or(true);
        if stale {
            return;
        }
        let r = self.running.take().expect("checked above");
        let now = self.now();
        let exec_ns = now.saturating_sub(r.started_ns);
        let m = self.core.metrics();
        m.lat_exec.record(exec_ns);
        self.core.note_exec_time(exec_ns);
        if exec_ns > 0 {
            self.core.note_class_exec_time(&r.label, exec_ns);
        }
        let wall_us = exec_ns / 1_000;
        let (state, outcome) = if r.panics && r.cancel.reason().is_none() {
            (
                JobState::Failed,
                JobOutcome {
                    ok: false,
                    wall_us,
                    detail: "panicked: simulated kernel fault".into(),
                },
            )
        } else {
            terminal_for(
                r.cancel.reason(),
                JobOutcome {
                    ok: r.ok,
                    wall_us,
                    detail: if r.ok {
                        "ok".into()
                    } else {
                        "verification failed".into()
                    },
                },
            )
        };
        match state {
            JobState::Done => m.completed.incr(),
            JobState::Failed => m.failed.incr(),
            JobState::Cancelled => m.cancelled.incr(),
            JobState::TimedOut => m.timed_out.incr(),
            _ => unreachable!("terminal_for returns terminal states"),
        }
        if let Some(stamp) = self.core.table().finish(r.job, state, outcome) {
            m.lat_total.record(stamp.total_ns);
            if let Some(cl) = stamp.cancel_latency_ns {
                m.wd_cancel_latency.record(cl);
            }
        }
        self.core.bump_activity();
        // Overload invariant: an accepted job reaches its terminal state
        // within the deadline-enforcement granularity — a watchdog tick
        // to notice the deadline, one maximal execution that started
        // just before the kill, and the cooperative unwind.
        if self.sc.shed {
            if let Some(dl) = r.deadline_ns {
                let grace = self.sc.watchdog_tick_ms * 1_000_000
                    + self.sc.exec_ns.1
                    + UNWIND_NS
                    + 1_000_000;
                if now > dl.saturating_add(grace) {
                    self.violations.push(format!(
                        "job {} finished {}ns past its deadline (grace {grace}ns)",
                        r.job,
                        now - dl
                    ));
                }
            }
        }
        self.trace_line(&format!("t={now} done job={} state={state:?}", r.job));
        self.deliver_completion(r.job);
        if !self.dispatcher_done {
            self.evq.push(now, Event::DispatcherPop);
        }
    }

    /// A cancelled, non-wedged running job unwinds at its next
    /// cooperative checkpoint — shortly, in virtual time.
    fn maybe_unwind_running(&mut self) {
        let now = self.now();
        if let Some(r) = self.running.as_mut() {
            if !r.unwinding && !r.wedged && r.cancel.is_cancelled() {
                r.unwinding = true;
                r.gen += 1;
                let (exec, gen) = (r.exec, r.gen);
                self.evq.push(now + UNWIND_NS, Event::JobDone { exec, gen });
            }
        }
    }

    /// The watchdog model: the production sweep over the real table,
    /// then escalation of a stalled cancel (backend poisoning).
    fn watchdog_tick(&mut self) {
        let now = self.now();
        let m = self.core.metrics();
        m.wd_ticks.incr();
        let grace_ns = self.sc.escalation_grace_ms * 1_000_000;
        let report = self.core.table().sweep(self.core.activity(), grace_ns);
        let killed = report.deadline_killed.len() as u64;
        m.wd_deadline_fired
            .add(killed + report.deadline_fired_running);
        m.timed_out.add(killed);
        m.dedup_size.set(report.dedup_size);
        m.dedup_evictions.add(report.dedup_evicted);
        for job in &report.deadline_killed {
            self.trace_line(&format!("t={now} wd kill queued job={job}"));
        }
        for job in report.deadline_killed.clone() {
            self.deliver_completion(job);
        }
        if let Some(stalled) = report.escalate {
            if !self.backend_poisoned {
                self.backend_poisoned = true;
                self.core.metrics().wd_escalations.incr();
            }
            self.trace_line(&format!("t={now} wd escalate job={stalled}"));
            // Poisoning abandons the MCA wait: the wedged job's unwind
            // finally runs.
            if let Some(r) = self.running.as_mut() {
                if r.job == stalled && !r.unwinding {
                    r.unwinding = true;
                    r.wedged = false;
                    r.gen += 1;
                    let (exec, gen) = (r.exec, r.gen);
                    self.evq.push(now + UNWIND_NS, Event::JobDone { exec, gen });
                }
            }
        }
        // A running job whose deadline just fired unwinds cooperatively.
        self.maybe_unwind_running();
        if !self.quiescent() {
            self.evq.push(
                now + self.sc.watchdog_tick_ms * 1_000_000,
                Event::WatchdogTick,
            );
        }
    }

    /// Whether nothing will ever happen again (the watchdog may stop).
    fn quiescent(&self) -> bool {
        // The dispatcher is done once the queue is closed and dry — it
        // may never see another `DispatcherPop` to notice it itself.
        (self.dispatcher_done || (self.core.queue().is_closed() && self.core.queue().is_empty()))
            && self.running.is_none()
            && self.core.queue().is_empty()
            && self.parked.is_empty()
            && self.clients.iter().all(|c| c.quiescent())
    }

    /// End-of-run invariants: the properties every seed must satisfy.
    fn finish_checks(&mut self) {
        for (i, c) in self.clients.iter_mut().enumerate() {
            self.violations.append(&mut c.violations);
            if !c.done {
                self.violations
                    .push(format!("client {i} never finished (stalled schedule)"));
            }
            if c.shutdown_pending {
                self.violations
                    .push(format!("client {i}'s shutdown was never answered"));
            }
        }
        let m = self.core.metrics();
        let accepted = m.accepted.get();
        let resolved = m.completed.get() + m.failed.get() + m.cancelled.get() + m.timed_out.get();
        if accepted != resolved {
            self.violations.push(format!(
                "dropped jobs: accepted={accepted} but only {resolved} reached a terminal state"
            ));
        }
        let dt = self.core.table().double_terminal();
        if dt != 0 {
            self.violations
                .push(format!("{dt} job(s) reached two terminal states"));
        }
        if self.core.table().live_jobs() != 0 {
            self.violations.push(format!(
                "{} job(s) still live after quiescence",
                self.core.table().live_jobs()
            ));
        }
        if !self.parked.is_empty() {
            self.violations.push(format!(
                "{} parked await(s) never answered",
                self.parked.values().map(Vec::len).sum::<usize>()
            ));
        }
        let dedup = self.core.table().dedup_size();
        if dedup > self.sc.dedup_cap {
            self.violations.push(format!(
                "dedup map over cap after quiescence: {dedup} > {}",
                self.sc.dedup_cap
            ));
        }
        if !self.clients.iter().any(|c| c.sent_shutdown) {
            self.violations
                .push("no shutdown was ever sent (drain untested)".into());
        }
        if self.sc.shed {
            // The Hi lane's weighted overtake must keep its predicted
            // waits under the (deliberately loose) Hi deadlines: a Hi
            // shed means the admission model lost the lane awareness.
            let hi_sheds = m.sched_sheds[0].get();
            if hi_sheds != 0 {
                self.violations
                    .push(format!("{hi_sheds} Hi-priority job(s) shed at admission"));
            }
            let hi_client_sheds: u64 = self
                .clients
                .iter()
                .filter(|c| c.profile.priority == 1)
                .map(|c| c.shed)
                .sum();
            if hi_client_sheds != 0 {
                self.violations.push(format!(
                    "{hi_client_sheds} ShedDeadline response(s) reached Hi clients"
                ));
            }
        }
    }

    /// The core, for post-run report extraction.
    pub fn core(&self) -> &SimCore {
        &self.core
    }

    /// The clients, for post-run report extraction.
    pub fn clients(&self) -> &[SimClient] {
        &self.clients
    }

    /// Events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Final virtual time, ns.
    pub fn virtual_ns(&self) -> u64 {
        self.clock.now_ns()
    }
}
