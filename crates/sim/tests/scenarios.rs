//! Small per-class seed sweeps: every scenario class holds its
//! invariants, and each class actually exhibits the behaviour it was
//! built to provoke (so a refactor can't silently neuter a storm).

use romp_sim::{run_scenario, Scenario, SimStats};

const SEEDS: u64 = 25;

fn sweep(sc: fn() -> Scenario) -> SimStats {
    let mut total = SimStats::default();
    for seed in 1..=SEEDS {
        let report = run_scenario(sc(), seed, false);
        assert!(
            report.ok(),
            "{} seed {seed}: {:?}",
            report.scenario,
            report.violations
        );
        total.accumulate(&report.stats);
    }
    total
}

#[test]
fn fault_storm_injects_faults_and_escalates() {
    let t = sweep(Scenario::fault_storm);
    assert!(t.accepted > 0 && t.completed > 0);
    assert!(t.failed > 0, "fault plan never failed a kernel");
    assert!(t.escalations > 0, "no wedged job ever escalated");
    assert!(t.timed_out > 0, "watchdog never killed a deadline job");
}

#[test]
fn partition_heal_delivers_everything_after_heal() {
    let t = sweep(Scenario::partition_heal);
    assert!(t.accepted > 0);
    assert!(
        t.resolved >= t.accepted,
        "partitioned clients left work unresolved after heal"
    );
}

#[test]
fn slow_client_backpressure_stays_fair() {
    let t = sweep(Scenario::slow_client);
    assert!(t.accepted > 0 && t.completed > 0);
    assert!(
        t.stats_seen > 0,
        "hammer clients never completed a Stats round"
    );
}

#[test]
fn cancel_storm_churns_dedup_and_cancellation() {
    let t = sweep(Scenario::cancel_storm);
    assert!(t.cancelled > 0, "cancel storm never cancelled a job");
    assert!(t.idem_hits > 0, "duplicate bursts never hit the dedup map");
    assert!(
        t.idem_pending_hits > 0,
        "no duplicate landed in the staged window"
    );
    assert!(t.retractions > 0, "no staging was ever retracted");
    assert!(t.timed_out > 0, "wedged deadline jobs never timed out");
    assert!(t.rejected > 0, "tiny queue never rejected a burst");
    // Dedup cap/TTL eviction can't trigger here: every accepted job's
    // result is consumed by an Await (the no-dropped-results
    // invariant), so terminal-backed keys never linger.  Eviction is
    // covered by the lifecycle unit tests instead.
    assert_eq!(t.double_terminal, 0);
}
