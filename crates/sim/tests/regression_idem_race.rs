//! Pinned-seed regression for the idempotency admission race.
//!
//! A duplicate `Submit` arriving while the original was staged but not
//! yet queue-admitted used to be told `Accepted` with a *new* job id
//! (the dedup entry was only published after admission), so one logical
//! submission could fan out into two jobs — or, worse, the retracted
//! staging entry left a dangling id the client could `Await` forever.
//! The fix claims the idem key at staging time and retracts it if the
//! queue rejects the batch.
//!
//! `cancel_storm` at seed 1 drives that window hard: the run only
//! passes its invariants (duplicate bursts resolve to a single id, no
//! dropped or double-terminal jobs, drain completes) because the
//! claim-before-admission ordering holds.  If the race is ever
//! reintroduced, this exact schedule replays it.

use romp_sim::{run_scenario, Scenario};

#[test]
fn cancel_storm_seed1_exercises_the_claim_window_and_stays_clean() {
    let report = run_scenario(Scenario::cancel_storm(), 1, false);
    assert!(
        report.ok(),
        "pinned schedule violated invariants: {:?}",
        report.violations
    );
    // The assertions below prove the schedule actually enters the race
    // window, rather than passing vacuously.
    assert!(
        report.stats.idem_pending_hits > 0,
        "schedule no longer hits a duplicate while the original is staged"
    );
    assert!(
        report.stats.retractions > 0,
        "schedule no longer retracts staged entries on batch rejection"
    );
    assert!(report.stats.idem_hits > 0);
    assert_eq!(report.stats.double_terminal, 0);
}
