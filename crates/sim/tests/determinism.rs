//! The simulator's foundation: a run is a pure function of
//! `(scenario, seed)`.  Same seed → byte-identical event trace; a
//! different seed explores a different schedule.

use romp_sim::{run_scenario, Scenario};

#[test]
fn same_seed_produces_byte_identical_traces() {
    for sc in Scenario::all() {
        for seed in [1u64, 42, 1337] {
            let a = run_scenario(sc.clone(), seed, true);
            let b = run_scenario(sc.clone(), seed, true);
            assert!(
                a.ok(),
                "{} seed {seed} violated invariants: {:?}",
                sc.name,
                a.violations
            );
            let ta = a.trace.expect("trace captured");
            let tb = b.trace.expect("trace captured");
            assert!(
                ta == tb,
                "{} seed {seed}: two runs diverged (len {} vs {})",
                sc.name,
                ta.len(),
                tb.len()
            );
            assert_eq!(a.stats.accepted, b.stats.accepted);
            assert_eq!(a.stats.events, b.stats.events);
        }
    }
}

#[test]
fn different_seeds_explore_different_schedules() {
    let sc = Scenario::cancel_storm;
    let a = run_scenario(sc(), 7, true);
    let b = run_scenario(sc(), 8, true);
    assert_ne!(
        a.trace, b.trace,
        "distinct seeds should not produce the same schedule"
    );
}
