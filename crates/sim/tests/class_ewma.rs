//! The per-class service-time estimator and the admission shed gate it
//! feeds: cold start admits freely, a single sample seeds the class
//! EWMA exactly, and an unseen class falls back to the global EWMA.

use mca_platform::VirtualClock;
use romp_epcc::Construct;
use romp_serve::session::ServeCore;
use romp_serve::{DedupConfig, JobSpec, Response};
use romp_sim::{SimCore, SimCoreConfig};

fn shed_core(clock: mca_platform::Clock) -> SimCore {
    SimCore::new(
        clock,
        SimCoreConfig {
            queue_cap: 8,
            default_deadline_ms: 0,
            shed: true,
            dedup: DedupConfig {
                cap: 64,
                ttl_ns: 1_000_000_000,
            },
        },
    )
}

fn job() -> JobSpec {
    JobSpec::Epcc {
        construct: Construct::Barrier,
        threads: 2,
        inner_reps: 8,
    }
}

#[test]
fn cold_start_has_no_class_estimate_and_admits_tight_deadlines() {
    let vclock = VirtualClock::new(0);
    let core = shed_core(vclock.clock());
    assert_eq!(core.class_ewma_ns(&job().label()), None);
    // No samples anywhere: the predicted wait is zero, so even a 1ms
    // deadline admits — shedding must not refuse work it knows nothing
    // about.
    let staged = core.prepare_submit(job(), 1, 0, 0, 1);
    assert!(staged.is_ok(), "cold-start shed gate must admit");
}

#[test]
fn single_sample_seeds_the_class_ewma_exactly() {
    let vclock = VirtualClock::new(0);
    let core = shed_core(vclock.clock());
    core.note_class_exec_time("k", 40_000_000);
    assert_eq!(core.class_ewma_ns("k"), Some(40_000_000));
    // The second sample smooths with alpha = 1/8 (same as the global
    // EWMA): 40 - 40/8 + 8/8 = 36.
    core.note_class_exec_time("k", 8_000_000);
    assert_eq!(core.class_ewma_ns("k"), Some(36_000_000));
    // Other classes stay untouched.
    assert_eq!(core.class_ewma_ns("other"), None);
}

#[test]
fn unseen_class_falls_back_to_the_global_ewma() {
    let vclock = VirtualClock::new(0);
    let core = shed_core(vclock.clock());
    // Global estimate says jobs take 50ms; this class has never run.
    core.note_exec_time(50_000_000);
    let spec = job();
    assert_eq!(core.class_ewma_ns(&spec.label()), None);

    // A 10ms deadline cannot fit a predicted 50ms service time.
    match core.prepare_submit(spec, 10, 0, 0, 1) {
        Err(Response::ShedDeadline { predicted_wait_ms }) => {
            assert!(
                (40..=60).contains(&predicted_wait_ms),
                "prediction reflects the global fallback: {predicted_wait_ms}ms"
            );
        }
        other => panic!("expected ShedDeadline, got {other:?}"),
    }
    // The shed is visible in the lane counter (priority 1 = Hi = lane 0).
    assert_eq!(core.metrics().sched_sheds[0].get(), 1);

    // Once the class has its own (fast) sample, the same deadline
    // admits: the specific estimate overrides the pessimistic global.
    core.note_class_exec_time(&job().label(), 2_000_000);
    let staged = core.prepare_submit(job(), 10, 0, 0, 1);
    assert!(staged.is_ok(), "class-specific estimate wins over global");
}

#[test]
fn shed_unwinds_staging_so_the_job_leaves_no_table_entry() {
    let vclock = VirtualClock::new(0);
    let core = shed_core(vclock.clock());
    core.note_exec_time(50_000_000);
    let before = core.table().retractions();
    let shed = core.prepare_submit(job(), 10, 0, 0, 0);
    assert!(matches!(shed, Err(Response::ShedDeadline { .. })));
    assert_eq!(
        core.table().retractions(),
        before + 1,
        "a shed retracts its staged table entry"
    );
}
