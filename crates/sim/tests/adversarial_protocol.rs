//! Protocol robustness properties: the frame decoder and request router
//! must survive *arbitrary* byte streams — split at any boundary,
//! truncated, corrupted, or mangled by the adversarial link mode — with
//! typed errors, never a panic, and reassembly must be
//! split-invariant.

use mca_platform::VirtualClock;
use mca_sync::SmallRng;
use romp_epcc::Construct;
use romp_serve::reactor::RecvBuf;
use romp_serve::session::{route_frames, PendingResp, ServeCore, Session};
use romp_serve::{DedupConfig, JobSpec, Request};
use romp_sim::net::{LinkDir, Payload};
use romp_sim::{SimCore, SimCoreConfig};

fn sample_requests() -> Vec<Request> {
    vec![
        Request::Submit {
            spec: JobSpec::Epcc {
                construct: Construct::Barrier,
                threads: 2,
                inner_reps: 8,
            },
            deadline_ms: 250,
            idem_key: 0xDEAD_BEEF,
            affinity: 0x5EED,
            priority: 1,
        },
        Request::Ping,
        Request::Poll { job: 1 },
        Request::Stats,
        Request::Fetch { job: 99 },
        Request::Cancel { job: 1 },
    ]
}

/// The reference stream: several valid frames back to back.
fn sample_stream() -> Vec<u8> {
    let mut bytes = Vec::new();
    for req in sample_requests() {
        bytes.extend_from_slice(&req.encode());
    }
    bytes
}

/// Decode everything currently buffered, panicking only on a decoder
/// panic (errors are collected, not fatal).
fn drain(rbuf: &mut RecvBuf) -> (Vec<Vec<u8>>, usize) {
    let mut bodies = Vec::new();
    let mut errors = 0;
    loop {
        match rbuf.next_frame() {
            Ok(Some(body)) => bodies.push(body),
            Ok(None) => break,
            Err(_) => {
                // Typed ProtoError: the stream is untrusted from here.
                errors += 1;
                break;
            }
        }
    }
    (bodies, errors)
}

#[test]
fn reassembly_is_split_invariant_at_every_byte_boundary() {
    let stream = sample_stream();
    let mut reference = RecvBuf::new();
    reference.extend(&stream);
    let (want, errs) = drain(&mut reference);
    assert_eq!(errs, 0);
    assert_eq!(want.len(), sample_requests().len());

    for split in 1..stream.len() {
        let mut rbuf = RecvBuf::new();
        rbuf.extend(&stream[..split]);
        let (mut got, e1) = drain(&mut rbuf);
        rbuf.extend(&stream[split..]);
        let (rest, e2) = drain(&mut rbuf);
        got.extend(rest);
        assert_eq!(e1 + e2, 0, "split at {split} produced a frame error");
        assert_eq!(got, want, "split at {split} changed the decoded frames");
    }
}

#[test]
fn truncation_at_every_byte_boundary_stays_typed() {
    let stream = sample_stream();
    for cut in 0..stream.len() {
        let mut rbuf = RecvBuf::new();
        rbuf.extend(&stream[..cut]);
        let (bodies, _errors) = drain(&mut rbuf);
        // Complete frames in the prefix must still decode as requests;
        // the dangling tail is simply incomplete — never a panic.
        for body in &bodies {
            Request::decode(body).expect("intact prefix frame decodes");
        }
        assert!(bodies.len() <= sample_requests().len());
    }
}

#[test]
fn single_byte_corruption_yields_ok_or_typed_error_never_panic() {
    let stream = sample_stream();
    for pos in 0..stream.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut bad = stream.clone();
            bad[pos] ^= flip;
            let mut rbuf = RecvBuf::new();
            rbuf.extend(&bad);
            // Corrupting a length prefix may desync everything after it;
            // corrupting a body must surface as a typed decode error (or
            // a different-but-valid request).  Either way: no panic.
            let (bodies, _errors) = drain(&mut rbuf);
            for body in &bodies {
                let _ = Request::decode(body);
            }
        }
    }
}

#[test]
fn adversarial_link_into_real_session_stays_typed() {
    let mut total_responses = 0u64;
    let mut total_proto_errors = 0u64;
    for seed in 1..=100u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vclock = VirtualClock::new(0);
        let core = SimCore::new(
            vclock.clock(),
            SimCoreConfig {
                queue_cap: 8,
                default_deadline_ms: 0,
                shed: false,
                dedup: DedupConfig {
                    cap: 64,
                    ttl_ns: 1_000_000_000,
                },
            },
        );
        let mut sess = Session::new();
        let mut link = LinkDir::new(1_000, 50_000);

        // A mix of valid frames and hostile garbage, all mangled by the
        // adversarial link (chunked, dropped, duplicated, reordered).
        let mut wire = Vec::new();
        for req in sample_requests() {
            wire.extend_from_slice(&req.encode());
        }
        let garbage_len = rng.gen_index(1, 48);
        for _ in 0..garbage_len {
            wire.push(rng.gen_range(0, 256) as u8);
        }
        let mut deliveries = link.send_adversarial(0, &mut rng, &wire);
        deliveries.sort_by_key(|(at, _)| *at);

        for (_at, payload) in deliveries {
            let Payload::Bytes(bytes) = payload else {
                continue;
            };
            sess.rbuf.extend(&bytes);
            if sess.closed || sess.close_after_flush {
                // Hostile prefix already condemned the stream; the
                // transport would stop reading.
                continue;
            }
            let mut batch = Vec::new();
            let mut parked = Vec::new();
            let slots = route_frames(&core, &mut sess, &mut batch, &mut parked);
            let admitted = core.admit_batch(batch);
            for slot in slots {
                total_responses += 1;
                match slot {
                    PendingResp::Ready(resp) => {
                        let _ = resp.encode();
                    }
                    PendingResp::Submit(i) => {
                        let _ = admitted[i].encode();
                    }
                }
            }
            // No Await requests in the sample set: nothing may park.
            assert!(parked.is_empty());
        }
        sess.eof = true;
        sess.arm_close_if_quiescent();
        total_proto_errors += core.metrics().proto_errors.get();
    }
    // The sweep must both answer real requests and detect garbage.
    assert!(total_responses > 0, "no request ever got a response");
    assert!(
        total_proto_errors > 0,
        "garbage never tripped a typed error"
    );
}
