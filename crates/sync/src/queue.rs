//! [`SharedQueue`] — an unbounded MPMC FIFO queue.
//!
//! This is the *shared* (slow) path of the two-level task scheduler: local
//! task rings absorb almost all traffic, so the shared queue sees only
//! overflow and cross-member handoff.  A short spin lock around a
//! `VecDeque` is therefore the right trade: no allocation-per-node, no
//! reclamation protocol, and the critical section is a couple of pointer
//! moves.  (The old design routed *every* task through one shared
//! lock-free queue; the bench in `ompmca-bench/benches/task_throughput.rs`
//! measures how much that cost.)

use std::collections::VecDeque;

use crate::SpinMutex;

/// An unbounded MPMC FIFO queue.
pub struct SharedQueue<T> {
    lock: SpinMutex,
    items: std::cell::UnsafeCell<VecDeque<T>>,
}

// SAFETY: `items` is only touched under `lock` (see `with`), which provides
// mutual exclusion.
unsafe impl<T: Send> Send for SharedQueue<T> {}
unsafe impl<T: Send> Sync for SharedQueue<T> {}

impl<T> Default for SharedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedQueue<T> {
    /// An empty queue.
    pub const fn new() -> Self {
        SharedQueue {
            lock: SpinMutex::new(),
            items: std::cell::UnsafeCell::new(VecDeque::new()),
        }
    }

    fn with<U>(&self, f: impl FnOnce(&mut VecDeque<T>) -> U) -> U {
        // SAFETY: the spin lock grants exclusive access for the closure.
        self.lock.with(|| f(unsafe { &mut *self.items.get() }))
    }

    /// Append `value` at the back.
    pub fn push(&self, value: T) {
        self.with(|q| q.push_back(value));
    }

    /// Take the front element, if any.
    pub fn pop(&self) -> Option<T> {
        self.with(|q| q.pop_front())
    }

    /// Whether the queue is momentarily empty (racy by nature; used as a
    /// cheap pre-check before paying for the lock).
    pub fn is_empty(&self) -> bool {
        self.with(|q| q.is_empty())
    }

    /// Momentary length.
    pub fn len(&self) -> usize {
        self.with(|q| q.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = SharedQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn mpmc_conserves_items() {
        let q = Arc::new(SharedQueue::new());
        let sum = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        q.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while got < 1000 {
                        if let Some(v) = q.pop() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            got += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in producers.into_iter().chain(consumers) {
            h.join().unwrap();
        }
        let expect: u64 = (0..4u64)
            .map(|p| (0..1000u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }
}
