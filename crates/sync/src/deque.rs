//! Work-stealing substrate: a bounded lock-free MPMC ring plus an
//! unbounded injector with the crossbeam-style `steal()` protocol.
//!
//! The shape follows the classic two-level scheduler (libGOMP task queues,
//! Go's runqueues, `mca-mtapi`'s injectors): each worker owns a bounded
//! [`RingQueue`] it pushes to and pops from, idle workers *steal* from
//! other workers' rings, and an [`Injector`] catches overflow and work
//! submitted from outside the worker set.
//!
//! [`RingQueue`] is Vyukov's bounded MPMC queue: every slot carries a
//! sequence word, so producers and consumers claim slots with one
//! compare-and-swap each and never block one another.  Using an MPMC ring
//! (rather than a single-producer Chase-Lev deque) keeps *all* operations
//! safe to call from any thread — the owner's pop and a thief's steal are
//! the same operation — at the cost of one extra atomic on the owner's
//! push, which the task-throughput bench shows is noise next to the
//! contention a single shared queue suffers.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::queue::SharedQueue;
use crate::CachePadded;

/// One ring slot: a sequence word and the (possibly vacant) value.
struct Slot<T> {
    /// Parity against head/tail positions: `seq == pos` ⇒ free for the
    /// producer claiming `pos`; `seq == pos + 1` ⇒ filled for the consumer
    /// claiming `pos`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC FIFO ring (Vyukov's algorithm).
pub struct RingQueue<T> {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    buf: Box<[Slot<T>]>,
    mask: usize,
}

// SAFETY: slots are handed off between threads via the per-slot `seq`
// acquire/release protocol; a value is only read by the consumer that won
// the head CAS for its position.
unsafe impl<T: Send> Send for RingQueue<T> {}
unsafe impl<T: Send> Sync for RingQueue<T> {}

impl<T> RingQueue<T> {
    /// A ring with capacity `cap` (rounded up to a power of two, min 2).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        let buf: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingQueue {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            buf,
            mask: cap - 1,
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Append `value`; returns it back if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Free slot for this position: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the tail CAS makes this producer
                        // the slot's unique writer until `seq` is published.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                // A full lap behind: the ring is full.
                return Err(value);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Take the oldest element, if any.  Safe from any thread — the owner's
    /// pop and a thief's steal are the same operation.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                // Filled slot for this position: claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the head CAS makes this consumer
                        // the slot's unique reader; the producer published
                        // the value with the Release store we Acquired.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Whether the ring is momentarily empty (racy; a cheap pre-check).
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        tail == head
    }

    /// Momentary occupancy.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }
}

impl<T> Drop for RingQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Outcome of a steal attempt (crossbeam-deque's vocabulary, which the
/// MTAPI scheduler was written against).
pub enum Steal<T> {
    /// Nothing to steal.
    Empty,
    /// Stole one item.
    Success(T),
    /// Lost a race; try again.
    Retry,
}

/// An unbounded FIFO injector: the submission point for work arriving from
/// outside the worker set, and the overflow target for full local rings.
pub struct Injector<T> {
    queue: SharedQueue<T>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub const fn new() -> Self {
        Injector {
            queue: SharedQueue::new(),
        }
    }

    /// Submit `value`.
    pub fn push(&self, value: T) {
        self.queue.push(value);
    }

    /// Attempt to take the oldest submission.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.pop() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Whether the injector is momentarily empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Momentary length.
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn ring_fifo_and_capacity() {
        let q = RingQueue::new(4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99), "full ring rejects");
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ring_wraps_many_generations() {
        let q = RingQueue::new(8);
        for round in 0..1000u64 {
            for i in 0..5 {
                q.push(round * 10 + i).unwrap();
            }
            for i in 0..5 {
                assert_eq!(q.pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn ring_mpmc_stress_conserves_sum() {
        let q = Arc::new(RingQueue::new(64));
        let produced = Arc::new(AtomicU64::new(0));
        let consumed = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicU64::new(0));
        const PER: u64 = 20_000;
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                let produced = Arc::clone(&produced);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let mut v = p * PER + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        produced.fetch_add(p * PER + i, Ordering::Relaxed);
                    }
                    done.fetch_add(1, Ordering::Release);
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                let done = Arc::clone(&done);
                std::thread::spawn(move || loop {
                    match q.pop() {
                        Some(v) => {
                            consumed.fetch_add(v, Ordering::Relaxed);
                        }
                        None => {
                            if done.load(Ordering::Acquire) == 3 && q.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in producers.into_iter().chain(consumers) {
            h.join().unwrap();
        }
        assert_eq!(
            produced.load(Ordering::Relaxed),
            consumed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn ring_drops_leftovers() {
        // Box values: leaks would show under sanitizers / drop counters.
        struct CountDrop(Arc<AtomicU64>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let q = RingQueue::new(8);
            for _ in 0..5 {
                q.push(CountDrop(Arc::clone(&drops))).ok().unwrap();
            }
            q.pop().unwrap();
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            5,
            "popped 1 + dropped 4 in queue"
        );
    }

    #[test]
    fn injector_steal_protocol() {
        let inj = Injector::new();
        inj.push(7u32);
        inj.push(8);
        assert_eq!(inj.len(), 2);
        match inj.steal() {
            Steal::Success(v) => assert_eq!(v, 7),
            _ => panic!("expected a stolen value"),
        }
        match inj.steal() {
            Steal::Success(v) => assert_eq!(v, 8),
            _ => panic!("expected a stolen value"),
        }
        assert!(matches!(inj.steal(), Steal::Empty));
        assert!(inj.is_empty());
    }
}
