//! # mca-sync — the workspace's own concurrency toolbox
//!
//! Every crate in this workspace builds in a hermetic container with no
//! crates.io access, so the concurrency vocabulary the runtime needs is
//! implemented here from `std` and atomics alone:
//!
//! * [`Mutex`] / [`Condvar`] / [`RwLock`] — thin non-poisoning wrappers over
//!   the `std::sync` primitives with the guard-based API the rest of the
//!   workspace uses (`lock()` returns the guard directly, condvars take
//!   `&mut MutexGuard` and offer deadline waits);
//! * [`CachePadded`] — aligns a value to 128 bytes so hot atomics never
//!   share a cache line (two lines, matching modern prefetch pairing);
//! * [`SpinMutex`] — a tiny spin-then-yield lock for short critical
//!   sections inside queue internals;
//! * [`queue::SharedQueue`] — an unbounded MPMC queue (the shared overflow
//!   and cross-thread path of the task scheduler);
//! * [`deque`] — the work-stealing substrate: a bounded lock-free MPMC
//!   [`deque::RingQueue`] (Vyukov sequence-slot algorithm) used as each
//!   team member's local task ring, plus an [`deque::Injector`] with the
//!   `steal()` protocol the MTAPI scheduler consumes;
//! * [`rng::SmallRng`] — a deterministic SplitMix64 generator for
//!   randomized tests and benchmark input generation.

pub mod deque;
pub mod mutex;
pub mod queue;
pub mod rng;

pub use mutex::{Condvar, Mutex, MutexGuard, RwLock, WaitTimeoutResult};
pub use rng::SmallRng;

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so neighbouring values in a
/// collection never share (prefetch-paired) cache lines.
///
/// The alignment (two 64-byte lines) matches what crossbeam uses on x86:
/// adjacent-line prefetchers pull cache lines in pairs, so 64-byte
/// alignment alone still invites false sharing between neighbours.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded(value)
    }
}

/// A minimal spin-then-yield mutual-exclusion lock for *short* critical
/// sections (queue pointer juggling, not user code).  Spins briefly, then
/// yields to the scheduler so oversubscribed hosts make progress.
pub struct SpinMutex {
    locked: std::sync::atomic::AtomicBool,
}

impl Default for SpinMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl SpinMutex {
    /// A new, unlocked spin mutex.
    pub const fn new() -> Self {
        SpinMutex {
            locked: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Acquire the lock.
    #[inline]
    pub fn lock(&self) {
        use std::sync::atomic::Ordering;
        let mut spins = 0u32;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                if spins < 64 {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Release the lock.  Caller must hold it.
    #[inline]
    pub fn unlock(&self) {
        self.locked
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Run `f` under the lock.
    #[inline]
    pub fn with<T>(&self, f: impl FnOnce() -> T) -> T {
        self.lock();
        let out = f();
        self.unlock();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_big_and_aligned() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let v: Vec<CachePadded<std::sync::atomic::AtomicU64>> = (0..4)
            .map(|_| CachePadded::new(std::sync::atomic::AtomicU64::new(0)))
            .collect();
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert!(b - a >= 128, "neighbours must not share a line pair");
    }

    #[test]
    fn cache_padded_derefs() {
        let mut c = CachePadded::new(41u32);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn spin_mutex_excludes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let m = Arc::new(SpinMutex::new());
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.with(|| {
                            let v = c.load(Ordering::Relaxed);
                            c.store(v + 1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 80_000);
    }
}
