//! A small deterministic PRNG for randomized tests and benchmark inputs.
//!
//! SplitMix64: 64 bits of state, one multiply-xorshift round per draw,
//! passes BigCrush for this use.  It exists so the workspace's property
//! tests and benches need no external `rand`/`proptest` crates: tests fix
//! a seed, making every run reproducible, and widen coverage by iterating
//! over many derived cases.

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; `hi` must exceed `lo`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` draw from `[lo, hi)`.
    pub fn gen_index(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_f64_range(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&g));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_index(0, 10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} implausible");
        }
    }
}
