//! Non-poisoning wrappers over `std::sync` with the guard-based API the
//! workspace was written against (`lock()` returns the guard directly,
//! condvar waits borrow the guard mutably, deadline waits report timeouts
//! through [`WaitTimeoutResult`]).
//!
//! Panic poisoning is deliberately ignored: the runtime captures member
//! panics itself (`romp`'s teams re-throw on the master after the region),
//! so a poisoned std lock would only turn an already-reported panic into a
//! second, less useful one.

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock around a value.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the inner `Option` is only vacated briefly
/// while a [`Condvar`] wait holds the std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Acquire without blocking; `None` if the lock is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard present outside condvar wait")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Whether a deadline wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// `true` when the wait returned because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        guard.guard = Some(match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A readers-writer lock around a value.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_reports_held() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            *started = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait(&mut started);
        }
        h.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        let res = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1, "poisoning must be transparent");
    }
}
