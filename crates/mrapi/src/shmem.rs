//! MRAPI shared memory, with the paper's `use_malloc` extension.
//!
//! MRAPI shared memory (paper §2B.2) is key-addressed: any node in the
//! domain can `shmem_get` a segment created by another node and see the same
//! bytes — unlike Linux SysV shared memory it is defined to work even across
//! nodes running *different operating systems*, which is why the stock
//! implementation routes through system-level IPC segments.
//!
//! The paper's §5A.2 extension adds an attribute — reproduced here as
//! [`ShmemAttributes::use_malloc`] (the `shm_attr.use_malloc = MCA_TRUE` of
//! Listing 3) — that maps the allocation onto the *process heap* instead.
//! Heap-backed segments are directly shareable between the threads of one
//! process (exactly what an OpenMP team needs) and skip the modeled IPC
//! costs; segment-backed ones charge a mapping cost at create/attach and a
//! coherency fence per access, modeling the cross-OS-entity path.
//!
//! Storage is a `[AtomicU64]` word array, so concurrent access from many
//! worker nodes is race-free at word granularity; teams layer their own
//! synchronization (MRAPI mutexes) on top, as the paper's runtime does.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::fault::FaultSite;
use crate::node::Node;
use crate::status::{ensure, MrapiResult, MrapiStatus};

/// Shared-memory key (`mrapi_shmem_key_t`): how other nodes find a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShmemKey(pub u32);

/// Creation attributes (`mrapi_shmem_attributes_t` subset + paper extension).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShmemAttributes {
    /// **Paper extension (§5A.2, Listing 3)**: allocate from the process
    /// heap for thread-level sharing instead of a system IPC segment.
    pub use_malloc: bool,
    /// Place the segment in the platform's on-chip SRAM window instead of
    /// DDR (MRAPI lets callers manage on-chip vs off-chip placement).
    pub on_chip: bool,
    /// Diagnostic label.
    pub label: Option<String>,
}

/// Modeled cost of mapping a system-level IPC segment (create or attach).
const SEGMENT_MAP_NS: f64 = 5_000.0;
/// Modeled per-access coherency cost of a system-level segment.
const SEGMENT_ACCESS_NS: f64 = 40.0;

/// Registry entry: the bytes plus bookkeeping.
pub struct ShmemSegment {
    key: u32,
    size: usize,
    attrs: ShmemAttributes,
    words: Box<[AtomicU64]>,
    attach_count: AtomicU32,
    deleted: AtomicBool,
}

impl ShmemSegment {
    fn new(key: u32, size: usize, attrs: ShmemAttributes) -> Self {
        let n_words = size.div_ceil(8);
        let words = (0..n_words)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShmemSegment {
            key,
            size,
            attrs,
            words,
            attach_count: AtomicU32::new(0),
            deleted: AtomicBool::new(false),
        }
    }
}

/// One node's attachment to a shared-memory segment.
///
/// Word accessors (`read_u64`/`write_u64`/`read_f64`/`write_f64`) take
/// *byte* offsets that must be 8-aligned and in-bounds; violations panic,
/// matching slice-indexing conventions.  Byte accessors handle any range.
pub struct ShmemHandle {
    node: Node,
    seg: Arc<ShmemSegment>,
}

impl Node {
    /// `mrapi_shmem_create` — create and attach a segment.
    ///
    /// Errors: `MRAPI_ERR_SHM_EXISTS` on key clash, `MRAPI_ERR_PARAMETER`
    /// for a zero size, `MRAPI_ERR_MEM_LIMIT` if an on-chip request exceeds
    /// the platform's SRAM window.
    pub fn shmem_create(
        &self,
        key: u32,
        size: usize,
        attrs: &ShmemAttributes,
    ) -> MrapiResult<ShmemHandle> {
        self.check_alive()?;
        ensure(size > 0, MrapiStatus::ErrParameter)?;
        self.system().fault_check(FaultSite::ShmemCreate)?;
        if attrs.on_chip {
            let sram = self
                .system()
                .memory_map()
                .by_name("cpc-sram")
                .ok_or(MrapiStatus::ErrMemLimit)?;
            ensure(size as u64 <= sram.size, MrapiStatus::ErrMemLimit)?;
        }
        let seg = Arc::new(ShmemSegment::new(key, size, attrs.clone()));
        {
            let mut map = self.domain_db().shmems.write();
            ensure(!map.contains_key(&key), MrapiStatus::ErrShmExists)?;
            map.insert(key, Arc::clone(&seg));
        }
        if !attrs.use_malloc {
            self.system().charge_sim_ns(SEGMENT_MAP_NS);
        }
        seg.attach_count.fetch_add(1, Ordering::AcqRel);
        Ok(ShmemHandle {
            node: self.clone(),
            seg,
        })
    }

    /// `mrapi_shmem_get` + `mrapi_shmem_attach` — find a segment by key and
    /// attach to it.  Fails with `MRAPI_ERR_SHM_INVALID` for unknown or
    /// deleted keys.
    pub fn shmem_get(&self, key: u32) -> MrapiResult<ShmemHandle> {
        self.check_alive()?;
        self.system().fault_check(FaultSite::ShmemGet)?;
        let seg = self
            .domain_db()
            .shmems
            .read()
            .get(&key)
            .cloned()
            .ok_or(MrapiStatus::ErrShmInvalid)?;
        ensure(
            !seg.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrShmInvalid,
        )?;
        if !seg.attrs.use_malloc {
            self.system().charge_sim_ns(SEGMENT_MAP_NS);
        }
        seg.attach_count.fetch_add(1, Ordering::AcqRel);
        Ok(ShmemHandle {
            node: self.clone(),
            seg,
        })
    }
}

impl ShmemHandle {
    /// The segment's key.
    pub fn key(&self) -> ShmemKey {
        ShmemKey(self.seg.key)
    }

    /// Requested size in bytes.
    pub fn len(&self) -> usize {
        self.seg.size
    }

    /// Whether the requested size was zero (it cannot be; kept for clippy).
    pub fn is_empty(&self) -> bool {
        self.seg.size == 0
    }

    /// Whether this segment is heap-backed (the paper's extension path).
    pub fn is_malloc_backed(&self) -> bool {
        self.seg.attrs.use_malloc
    }

    /// Live attachments across all nodes.
    pub fn attachments(&self) -> u32 {
        self.seg.attach_count.load(Ordering::Acquire)
    }

    #[inline]
    fn word(&self, byte_offset: usize) -> &AtomicU64 {
        assert_eq!(byte_offset % 8, 0, "word access requires 8-byte alignment");
        assert!(
            byte_offset + 8 <= self.seg.words.len() * 8,
            "shmem word access out of bounds"
        );
        &self.seg.words[byte_offset / 8]
    }

    #[inline]
    fn charge_access(&self) {
        if !self.seg.attrs.use_malloc {
            // Cross-OS-entity segments pay a coherency fence per access.
            std::sync::atomic::fence(Ordering::SeqCst);
            self.node.system().charge_sim_ns(SEGMENT_ACCESS_NS);
        }
    }

    /// Read the u64 at byte offset `off` (8-aligned).
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        self.charge_access();
        self.word(off).load(Ordering::Acquire)
    }

    /// Write the u64 at byte offset `off` (8-aligned).
    #[inline]
    pub fn write_u64(&self, off: usize, v: u64) {
        self.charge_access();
        self.word(off).store(v, Ordering::Release);
    }

    /// Atomic fetch-add on the u64 at byte offset `off`.
    #[inline]
    pub fn fetch_add_u64(&self, off: usize, v: u64) -> u64 {
        self.charge_access();
        self.word(off).fetch_add(v, Ordering::AcqRel)
    }

    /// Read the f64 at byte offset `off` (8-aligned).
    #[inline]
    pub fn read_f64(&self, off: usize) -> f64 {
        f64::from_bits(self.read_u64(off))
    }

    /// Write the f64 at byte offset `off` (8-aligned).
    #[inline]
    pub fn write_f64(&self, off: usize, v: f64) {
        self.write_u64(off, v.to_bits());
    }

    /// Copy bytes out of the segment.  Panics if the range exceeds the
    /// segment size.  Concurrent writers may produce torn *multi-word*
    /// reads; individual u64 words are always consistent.
    pub fn read_bytes(&self, off: usize, out: &mut [u8]) {
        assert!(off + out.len() <= self.seg.size, "shmem read out of bounds");
        self.charge_access();
        for (i, b) in out.iter_mut().enumerate() {
            let byte = off + i;
            let w = self.seg.words[byte / 8].load(Ordering::Acquire);
            *b = (w >> ((byte % 8) * 8)) as u8;
        }
    }

    /// Copy bytes into the segment.  Panics if the range exceeds the
    /// segment size.
    pub fn write_bytes(&self, off: usize, data: &[u8]) {
        assert!(
            off + data.len() <= self.seg.size,
            "shmem write out of bounds"
        );
        self.charge_access();
        let mut i = 0;
        while i < data.len() {
            let byte = off + i;
            let word_idx = byte / 8;
            let shift = (byte % 8) * 8;
            // How many bytes land in this word?
            let in_word = (8 - byte % 8).min(data.len() - i);
            let mut chunk = 0u64;
            let mut mask = 0u64;
            for k in 0..in_word {
                chunk |= (data[i + k] as u64) << (shift + k * 8);
                mask |= 0xFFu64 << (shift + k * 8);
            }
            self.seg.words[word_idx]
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |w| {
                    Some((w & !mask) | chunk)
                })
                .expect("fetch_update closure never returns None");
            i += in_word;
        }
    }

    /// Direct word-slice view for high-rate users (the OpenMP runtime's
    /// reduction buffers).  Accesses through the slice bypass the modeled
    /// per-access costs — the heap-backed fast path of the paper's
    /// extension.
    pub fn as_words(&self) -> &[AtomicU64] {
        &self.seg.words
    }

    /// `mrapi_shmem_detach` — drop this attachment.
    pub fn detach(self) -> MrapiResult<()> {
        self.node.check_alive()?;
        // Drop impl does the decrement.
        Ok(())
    }

    /// `mrapi_shmem_delete` — mark the segment deleted and remove it from
    /// the registry; existing attachments keep working, new `shmem_get`
    /// calls fail.  MRAPI requires the caller to be attached (we are).
    pub fn delete(self) -> MrapiResult<()> {
        self.node.check_alive()?;
        self.seg.deleted.store(true, Ordering::Release);
        self.node.domain_db().shmems.write().remove(&self.seg.key);
        Ok(())
    }
}

impl Drop for ShmemHandle {
    fn drop(&mut self) {
        self.seg.attach_count.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for ShmemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmemHandle")
            .field("key", &self.seg.key)
            .field("size", &self.seg.size)
            .field("use_malloc", &self.seg.attrs.use_malloc)
            .field("attachments", &self.attachments())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, MrapiSystem, NodeId};

    fn node() -> Node {
        MrapiSystem::new_t4240()
            .initialize(DomainId(1), NodeId(0))
            .unwrap()
    }

    #[test]
    fn create_write_read_roundtrip() {
        let n = node();
        let h = n.shmem_create(1, 64, &ShmemAttributes::default()).unwrap();
        h.write_u64(0, 0xDEAD_BEEF);
        h.write_f64(8, 3.25);
        assert_eq!(h.read_u64(0), 0xDEAD_BEEF);
        assert_eq!(h.read_f64(8), 3.25);
        assert_eq!(h.len(), 64);
    }

    #[test]
    fn key_clash_and_unknown_key() {
        let n = node();
        let _a = n.shmem_create(9, 8, &ShmemAttributes::default()).unwrap();
        assert_eq!(
            n.shmem_create(9, 8, &ShmemAttributes::default())
                .unwrap_err()
                .0,
            MrapiStatus::ErrShmExists
        );
        assert_eq!(n.shmem_get(1234).unwrap_err().0, MrapiStatus::ErrShmInvalid);
    }

    #[test]
    fn cross_node_visibility_via_key() {
        let sys = MrapiSystem::new_t4240();
        let a = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let h = a.shmem_create(42, 16, &ShmemAttributes::default()).unwrap();
        h.write_u64(0, 7);
        let w = a
            .thread_create(NodeId(1), move |me| {
                let h2 = me.shmem_get(42).unwrap();
                let seen = h2.read_u64(0);
                h2.write_u64(8, seen * 3);
                seen
            })
            .unwrap();
        assert_eq!(w.join().unwrap(), 7);
        assert_eq!(h.read_u64(8), 21, "worker's write visible to creator");
    }

    #[test]
    fn attach_counts_and_detach() {
        let n = node();
        let h = n.shmem_create(5, 8, &ShmemAttributes::default()).unwrap();
        assert_eq!(h.attachments(), 1);
        let h2 = n.shmem_get(5).unwrap();
        assert_eq!(h.attachments(), 2);
        h2.detach().unwrap();
        assert_eq!(h.attachments(), 1);
    }

    #[test]
    fn delete_blocks_new_attaches_but_not_existing() {
        let n = node();
        let h = n.shmem_create(6, 8, &ShmemAttributes::default()).unwrap();
        let h2 = n.shmem_get(6).unwrap();
        h2.delete().unwrap();
        assert_eq!(n.shmem_get(6).unwrap_err().0, MrapiStatus::ErrShmInvalid);
        h.write_u64(0, 1); // existing attachment still usable
        assert_eq!(h.read_u64(0), 1);
    }

    #[test]
    fn byte_access_any_alignment() {
        let n = node();
        let h = n
            .shmem_create(
                7,
                32,
                &ShmemAttributes {
                    use_malloc: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let msg = b"hello, embedded world";
        h.write_bytes(3, msg);
        let mut out = vec![0u8; msg.len()];
        h.read_bytes(3, &mut out);
        assert_eq!(&out, msg);
        // Word under the bytes reflects them.
        assert_ne!(h.read_u64(0), 0);
    }

    #[test]
    fn byte_writes_do_not_disturb_neighbours() {
        let n = node();
        let h = n.shmem_create(8, 24, &ShmemAttributes::default()).unwrap();
        h.write_u64(0, u64::MAX);
        h.write_u64(8, u64::MAX);
        h.write_bytes(6, &[0xAB, 0xCD, 0xEF]); // straddles the word boundary
        let mut all = [0u8; 16];
        h.read_bytes(0, &mut all);
        assert_eq!(&all[..6], &[0xFF; 6]);
        assert_eq!(&all[6..9], &[0xAB, 0xCD, 0xEF]);
        assert_eq!(&all[9..], &[0xFF; 7]);
    }

    #[test]
    fn malloc_backed_skips_sim_costs() {
        let sys = MrapiSystem::new_t4240();
        let n = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let heap = n
            .shmem_create(
                1,
                8,
                &ShmemAttributes {
                    use_malloc: true,
                    ..Default::default()
                },
            )
            .unwrap();
        heap.write_u64(0, 1);
        let _ = heap.read_u64(0);
        assert_eq!(sys.simulated_transfer_ns(), 0, "heap path charges nothing");
        let seg = n.shmem_create(2, 8, &ShmemAttributes::default()).unwrap();
        seg.write_u64(0, 1);
        assert!(
            sys.simulated_transfer_ns() > 0,
            "segment path charges map+access"
        );
    }

    #[test]
    fn on_chip_respects_sram_capacity() {
        let n = node();
        let attrs = ShmemAttributes {
            on_chip: true,
            ..Default::default()
        };
        assert!(n.shmem_create(1, 128 * 1024, &attrs).is_ok());
        assert_eq!(
            n.shmem_create(2, 10 * 1024 * 1024, &attrs).unwrap_err().0,
            MrapiStatus::ErrMemLimit
        );
    }

    #[test]
    fn zero_size_rejected() {
        let n = node();
        assert_eq!(
            n.shmem_create(1, 0, &ShmemAttributes::default())
                .unwrap_err()
                .0,
            MrapiStatus::ErrParameter
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn word_oob_panics() {
        let n = node();
        let h = n.shmem_create(1, 8, &ShmemAttributes::default()).unwrap();
        h.read_u64(8);
    }

    #[test]
    #[should_panic(expected = "alignment")]
    fn word_misalignment_panics() {
        let n = node();
        let h = n.shmem_create(1, 16, &ShmemAttributes::default()).unwrap();
        h.read_u64(4);
    }

    #[test]
    fn fetch_add_is_atomic_across_workers() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let h = master
            .shmem_create(
                1,
                8,
                &ShmemAttributes {
                    use_malloc: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let workers: Vec<_> = (0..8)
            .map(|i| {
                master
                    .thread_create(NodeId(1 + i), move |me| {
                        let h = me.shmem_get(1).unwrap();
                        for _ in 0..1000 {
                            h.fetch_add_u64(0, 1);
                        }
                    })
                    .unwrap()
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(h.read_u64(0), 8000);
    }
}
