//! MRAPI synchronization primitives (paper §2B.3).
//!
//! MRAPI offers three primitives — **mutexes**, **semaphores** and
//! **reader/writer locks** — that let nodes coordinate access to shared
//! resources "to avert data race or race conditions".  All three are
//! key-addressed like shared memory: any node in the domain can `get` a
//! primitive created by another node.  All blocking operations accept a
//! timeout (`MRAPI_TIMEOUT_INFINITE` to wait forever) and report
//! `MRAPI_TIMEOUT` on expiry.
//!
//! The mutex is the primitive the paper maps `libGOMP`'s lock entry points
//! onto (§5B.3, Listing 4): `gomp_mrapi_mutex_lock` calls
//! `mrapi_mutex_lock(handle, &key, MRAPI_TIMEOUT_INFINITE, &status)`.  The
//! MRAPI *lock key* protocol — each acquisition returns a key that must be
//! presented to unlock, enabling checked recursive locking — is implemented
//! faithfully here.

mod mutex;
mod rwlock;
mod semaphore;

pub use mutex::{Mutex, MutexAttributes, MutexKey};
pub use rwlock::{RwLock, RwLockAttributes};
pub use semaphore::{Semaphore, SemaphoreAttributes};

pub(crate) use mutex::MutexInner;
pub(crate) use rwlock::RwLockInner;
pub(crate) use semaphore::SemInner;

use std::time::Duration;

/// Convert an MRAPI timeout to an optional deadline-style wait budget.
/// Anything at or beyond the infinite sentinel means "wait forever".
pub(crate) fn finite_timeout(t: Duration) -> Option<Duration> {
    if t >= crate::MRAPI_TIMEOUT_INFINITE {
        None
    } else {
        Some(t)
    }
}
