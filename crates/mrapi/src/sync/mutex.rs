//! MRAPI mutexes with lock keys and checked recursion.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Duration;

use mca_sync::{Condvar, Mutex as PlMutex};

use crate::fault::FaultSite;
use crate::node::{Node, NodeId};
use crate::status::{ensure, MrapiResult, MrapiStatus};
use crate::sync::finite_timeout;

/// Creation attributes (`mrapi_mutex_attributes_t` subset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutexAttributes {
    /// Allow the holder to re-lock; each acquisition gets its own lock key
    /// and unlocks must be presented in LIFO order.
    pub recursive: bool,
}

/// The lock key `mrapi_mutex_lock` hands back (`mrapi_key_t`).
///
/// Opaque: its only use is to be given back to [`Mutex::unlock`].
#[derive(Debug, PartialEq, Eq)]
pub struct MutexKey(pub(crate) u64);

struct State {
    owner: Option<ThreadId>,
    /// The MRAPI node the owning thread locked through — the "which node
    /// holds this lock" half of a deadlock report.
    owner_node: Option<NodeId>,
    depth: u64,
}

/// Registry entry shared by every handle to one mutex.
pub struct MutexInner {
    key: u32,
    recursive: bool,
    state: PlMutex<State>,
    cv: Condvar,
    deleted: AtomicBool,
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

/// A node's handle to an MRAPI mutex.
pub struct Mutex {
    node: Node,
    inner: Arc<MutexInner>,
}

impl Node {
    /// `mrapi_mutex_create`.  Fails with `MRAPI_ERR_MUTEX_EXISTS` on key
    /// clash.
    pub fn mutex_create(&self, key: u32, attrs: &MutexAttributes) -> MrapiResult<Mutex> {
        self.check_alive()?;
        self.system().fault_check(FaultSite::MutexCreate)?;
        let inner = Arc::new(MutexInner {
            key,
            recursive: attrs.recursive,
            state: PlMutex::new(State {
                owner: None,
                owner_node: None,
                depth: 0,
            }),
            cv: Condvar::new(),
            deleted: AtomicBool::new(false),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        });
        let mut map = self.domain_db().mutexes.write();
        ensure(!map.contains_key(&key), MrapiStatus::ErrMutexExists)?;
        map.insert(key, Arc::clone(&inner));
        Ok(Mutex {
            node: self.clone(),
            inner,
        })
    }

    /// `mrapi_mutex_get` — look up a mutex created by any node in the
    /// domain.
    pub fn mutex_get(&self, key: u32) -> MrapiResult<Mutex> {
        self.check_alive()?;
        let inner = self
            .domain_db()
            .mutexes
            .read()
            .get(&key)
            .cloned()
            .ok_or(MrapiStatus::ErrMutexInvalid)?;
        ensure(
            !inner.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrMutexInvalid,
        )?;
        Ok(Mutex {
            node: self.clone(),
            inner,
        })
    }
}

impl Mutex {
    /// The registry key.
    pub fn key(&self) -> u32 {
        self.inner.key
    }

    fn check_live(&self) -> MrapiResult<()> {
        self.node.check_alive()?;
        ensure(
            !self.inner.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrMutexInvalid,
        )
    }

    /// `mrapi_mutex_lock`.  Blocks up to `timeout`
    /// ([`crate::MRAPI_TIMEOUT_INFINITE`] to wait forever) and returns the
    /// lock key for this acquisition.
    ///
    /// Re-locking while holding: allowed for recursive mutexes (a deeper
    /// key is returned), `MRAPI_ERR_MUTEX_LOCKED` otherwise.
    pub fn lock(&self, timeout: Duration) -> MrapiResult<MutexKey> {
        self.check_live()?;
        self.node.system().fault_check(FaultSite::MutexLock)?;
        let me = std::thread::current().id();
        let mut st = self.inner.state.lock();
        if st.owner == Some(me) {
            if self.inner.recursive {
                st.depth += 1;
                self.inner.acquisitions.fetch_add(1, Ordering::Relaxed);
                return Ok(MutexKey(st.depth));
            }
            return Err(MrapiStatus::ErrMutexAlreadyLocked.into());
        }
        if st.owner.is_some() {
            self.inner.contended.fetch_add(1, Ordering::Relaxed);
        }
        match finite_timeout(timeout) {
            None => {
                while st.owner.is_some() {
                    self.inner.cv.wait(&mut st);
                }
            }
            Some(budget) => {
                let deadline = std::time::Instant::now() + budget;
                while st.owner.is_some() {
                    if self.inner.cv.wait_until(&mut st, deadline).timed_out() {
                        ensure(st.owner.is_none(), MrapiStatus::Timeout)?;
                        break;
                    }
                }
            }
        }
        st.owner = Some(me);
        st.owner_node = Some(self.node.node_id());
        st.depth = 1;
        self.inner.acquisitions.fetch_add(1, Ordering::Relaxed);
        Ok(MutexKey(1))
    }

    /// `mrapi_mutex_trylock` — acquire without blocking, or
    /// `MRAPI_ERR_MUTEX_LOCKED`.
    pub fn try_lock(&self) -> MrapiResult<MutexKey> {
        self.check_live()?;
        self.node.system().fault_check(FaultSite::MutexLock)?;
        let me = std::thread::current().id();
        let mut st = self.inner.state.lock();
        if st.owner == Some(me) && self.inner.recursive {
            st.depth += 1;
            self.inner.acquisitions.fetch_add(1, Ordering::Relaxed);
            return Ok(MutexKey(st.depth));
        }
        ensure(st.owner.is_none(), MrapiStatus::ErrMutexAlreadyLocked)?;
        st.owner = Some(me);
        st.owner_node = Some(self.node.node_id());
        st.depth = 1;
        self.inner.acquisitions.fetch_add(1, Ordering::Relaxed);
        Ok(MutexKey(1))
    }

    /// `mrapi_mutex_unlock`.  The presented key must be the most recent
    /// acquisition's (`MRAPI_ERR_MUTEX_KEY` otherwise); the caller must hold
    /// the lock (`MRAPI_ERR_MUTEX_NOTLOCKED`).
    pub fn unlock(&self, key: &MutexKey) -> MrapiResult<()> {
        self.check_live()?;
        // An injected unlock failure leaves the mutex held — the wedged-lock
        // scenario recovery code must handle (waiters time out and degrade).
        self.node.system().fault_check(FaultSite::MutexUnlock)?;
        let me = std::thread::current().id();
        let mut st = self.inner.state.lock();
        ensure(st.owner == Some(me), MrapiStatus::ErrMutexNotLocked)?;
        ensure(key.0 == st.depth, MrapiStatus::ErrMutexKey)?;
        st.depth -= 1;
        if st.depth == 0 {
            st.owner = None;
            st.owner_node = None;
            drop(st);
            self.inner.cv.notify_one();
        }
        Ok(())
    }

    /// Which MRAPI node currently holds the mutex (`None` when free) — the
    /// diagnostic a deadlock report wants.
    pub fn holder_node(&self) -> Option<NodeId> {
        self.inner.state.lock().owner_node
    }

    /// Run `f` under the mutex (convenience; not part of the C API).
    pub fn with_lock<T>(&self, f: impl FnOnce() -> T) -> MrapiResult<T> {
        let k = self.lock(crate::MRAPI_TIMEOUT_INFINITE)?;
        let out = f();
        self.unlock(&k)?;
        Ok(out)
    }

    /// Total successful acquisitions (diagnostics).
    pub fn acquisitions(&self) -> u64 {
        self.inner.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the mutex held (diagnostics).
    pub fn contended(&self) -> u64 {
        self.inner.contended.load(Ordering::Relaxed)
    }

    /// `mrapi_mutex_delete` — remove from the registry; other handles'
    /// subsequent operations fail with `MRAPI_ERR_MUTEX_INVALID`.
    pub fn delete(self) -> MrapiResult<()> {
        self.check_live()?;
        self.inner.deleted.store(true, Ordering::Release);
        self.node
            .domain_db()
            .mutexes
            .write()
            .remove(&self.inner.key);
        self.inner.cv.notify_all();
        Ok(())
    }
}

impl std::fmt::Debug for Mutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrapiMutex")
            .field("key", &self.inner.key)
            .field("recursive", &self.inner.recursive)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, MrapiSystem, NodeId, MRAPI_TIMEOUT_INFINITE};

    fn node() -> Node {
        MrapiSystem::new_t4240()
            .initialize(DomainId(1), NodeId(0))
            .unwrap()
    }

    #[test]
    fn listing_4_flow() {
        // The exact sequence of the paper's gomp_mrapi_mutex_lock.
        let n = node();
        let m = n.mutex_create(1, &MutexAttributes::default()).unwrap();
        let key = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        m.unlock(&key).unwrap();
    }

    #[test]
    fn recursion_requires_lifo_keys() {
        let n = node();
        let m = n
            .mutex_create(1, &MutexAttributes { recursive: true })
            .unwrap();
        let k1 = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        let k2 = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        assert_ne!(k1, k2);
        // Wrong order: presenting k1 while k2 is outstanding.
        assert_eq!(m.unlock(&k1).unwrap_err().0, MrapiStatus::ErrMutexKey);
        m.unlock(&k2).unwrap();
        m.unlock(&k1).unwrap();
        assert_eq!(m.unlock(&k1).unwrap_err().0, MrapiStatus::ErrMutexNotLocked);
    }

    #[test]
    fn non_recursive_relock_rejected() {
        let n = node();
        let m = n.mutex_create(1, &MutexAttributes::default()).unwrap();
        let _k = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        assert_eq!(
            m.lock(Duration::from_millis(1)).unwrap_err().0,
            MrapiStatus::ErrMutexAlreadyLocked
        );
    }

    #[test]
    fn unlock_without_hold_rejected() {
        let n = node();
        let m = n.mutex_create(1, &MutexAttributes::default()).unwrap();
        assert_eq!(
            m.unlock(&MutexKey(1)).unwrap_err().0,
            MrapiStatus::ErrMutexNotLocked
        );
    }

    #[test]
    fn timeout_fires_when_held_elsewhere() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let m = master.mutex_create(1, &MutexAttributes::default()).unwrap();
        let holder = master
            .thread_create(NodeId(1), |me| {
                let m = me.mutex_get(1).unwrap();
                let k = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
                std::thread::sleep(Duration::from_millis(120));
                m.unlock(&k).unwrap();
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let err = m.lock(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err.0, MrapiStatus::Timeout);
        // Infinite wait succeeds once the holder releases.
        let k = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        m.unlock(&k).unwrap();
        holder.join().unwrap();
    }

    #[test]
    fn mutual_exclusion_under_stress() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let _m = master.mutex_create(1, &MutexAttributes::default()).unwrap();
        let shm = master
            .shmem_create(
                99,
                8,
                &crate::ShmemAttributes {
                    use_malloc: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let workers: Vec<_> = (0..6)
            .map(|i| {
                master
                    .thread_create(NodeId(1 + i), move |me| {
                        let m = me.mutex_get(1).unwrap();
                        let shm = me.shmem_get(99).unwrap();
                        for _ in 0..500 {
                            let k = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
                            // Deliberately non-atomic read-modify-write: only
                            // the mutex makes it correct.
                            let v = shm.read_u64(0);
                            shm.write_u64(0, v + 1);
                            m.unlock(&k).unwrap();
                        }
                    })
                    .unwrap()
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(shm.read_u64(0), 3000);
    }

    #[test]
    fn try_lock_and_stats() {
        let n = node();
        let m = n.mutex_create(1, &MutexAttributes::default()).unwrap();
        let k = m.try_lock().unwrap();
        assert_eq!(
            m.try_lock().unwrap_err().0,
            MrapiStatus::ErrMutexAlreadyLocked
        );
        m.unlock(&k).unwrap();
        assert_eq!(m.acquisitions(), 1);
    }

    #[test]
    fn delete_invalidates_other_handles() {
        let n = node();
        let a = n.mutex_create(1, &MutexAttributes::default()).unwrap();
        let b = n.mutex_get(1).unwrap();
        a.delete().unwrap();
        assert_eq!(
            b.lock(MRAPI_TIMEOUT_INFINITE).unwrap_err().0,
            MrapiStatus::ErrMutexInvalid
        );
        assert_eq!(n.mutex_get(1).unwrap_err().0, MrapiStatus::ErrMutexInvalid);
        // Key is reusable after delete.
        n.mutex_create(1, &MutexAttributes::default()).unwrap();
    }

    #[test]
    fn holder_node_reports_the_locking_node() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let m = master.mutex_create(1, &MutexAttributes::default()).unwrap();
        assert_eq!(m.holder_node(), None);
        let w = master
            .thread_create(NodeId(9), |me| {
                let m = me.mutex_get(1).unwrap();
                let k = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
                let seen = m.holder_node();
                m.unlock(&k).unwrap();
                seen
            })
            .unwrap();
        assert_eq!(w.join().unwrap(), Some(NodeId(9)));
        assert_eq!(m.holder_node(), None);
    }

    #[test]
    fn injected_lock_timeouts_are_transient() {
        use crate::fault::FaultPlan;
        use std::sync::Arc;
        // 60% injected Timeout on the lock site: a bounded retry loop must
        // still get through, and the schedule is deterministic per seed.
        let sys = MrapiSystem::new_t4240();
        let plan = Arc::new(FaultPlan::new(11).with_fail_rate(FaultSite::MutexLock, 600_000));
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let m = master.mutex_create(1, &MutexAttributes::default()).unwrap();
        sys.set_fault_probe(Some(Arc::clone(&plan) as Arc<dyn crate::fault::FaultProbe>));
        let mut succeeded = 0;
        for _ in 0..50 {
            loop {
                match m.lock(MRAPI_TIMEOUT_INFINITE) {
                    Ok(k) => {
                        m.unlock(&k).unwrap_or_else(|_| {
                            // Injected unlock failures are off (rate 0), so
                            // this cannot happen.
                            unreachable!()
                        });
                        succeeded += 1;
                        break;
                    }
                    Err(e) => assert!(FaultSite::MutexLock.legal_statuses().contains(&e.0), "{e}"),
                }
            }
        }
        assert_eq!(succeeded, 50);
        assert!(plan.injected() > 0, "rate 60% must have fired");
        sys.set_fault_probe(None);
    }

    #[test]
    fn injected_unlock_failure_leaves_mutex_wedged() {
        use crate::fault::FaultPlan;
        use std::sync::Arc;
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let m = master.mutex_create(1, &MutexAttributes::default()).unwrap();
        let k = m.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        sys.set_fault_probe(Some(Arc::new(FaultPlan::new(0).with_persistent(
            FaultSite::MutexUnlock,
            MrapiStatus::ErrMutexInvalid,
            0,
        ))));
        assert_eq!(m.unlock(&k).unwrap_err().0, MrapiStatus::ErrMutexInvalid);
        assert_eq!(
            m.holder_node(),
            Some(NodeId(0)),
            "still held after failed unlock"
        );
        sys.set_fault_probe(None);
        m.unlock(&k).unwrap();
        assert_eq!(m.holder_node(), None);
    }

    #[test]
    fn with_lock_convenience() {
        let n = node();
        let m = n.mutex_create(1, &MutexAttributes::default()).unwrap();
        let out = m.with_lock(|| 5).unwrap();
        assert_eq!(out, 5);
        // Lock is free afterwards.
        let k = m.try_lock().unwrap();
        m.unlock(&k).unwrap();
    }
}
