//! MRAPI reader/writer locks.
//!
//! Writer-preferring: once a writer is waiting, new readers queue behind it,
//! so a steady reader stream cannot starve writers — the behaviour embedded
//! control-plane code expects.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mca_sync::{Condvar, Mutex as PlMutex};

use crate::node::Node;
use crate::status::{ensure, MrapiResult, MrapiStatus};
use crate::sync::finite_timeout;

/// Creation attributes (`mrapi_rwl_attributes_t` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RwLockAttributes {
    /// Maximum simultaneous readers (MRAPI exposes a reader limit for
    /// hardware-assisted implementations).
    pub max_readers: u32,
}

impl Default for RwLockAttributes {
    fn default() -> Self {
        RwLockAttributes {
            max_readers: u32::MAX,
        }
    }
}

struct State {
    active_readers: u32,
    writer_active: bool,
    writers_waiting: u32,
}

/// Registry entry shared by every handle.
pub struct RwLockInner {
    key: u32,
    max_readers: u32,
    state: PlMutex<State>,
    cv: Condvar,
    deleted: AtomicBool,
}

/// A node's handle to an MRAPI reader/writer lock.
pub struct RwLock {
    node: Node,
    inner: Arc<RwLockInner>,
}

impl Node {
    /// `mrapi_rwl_create`.
    pub fn rwl_create(&self, key: u32, attrs: &RwLockAttributes) -> MrapiResult<RwLock> {
        self.check_alive()?;
        ensure(attrs.max_readers > 0, MrapiStatus::ErrParameter)?;
        let inner = Arc::new(RwLockInner {
            key,
            max_readers: attrs.max_readers,
            state: PlMutex::new(State {
                active_readers: 0,
                writer_active: false,
                writers_waiting: 0,
            }),
            cv: Condvar::new(),
            deleted: AtomicBool::new(false),
        });
        let mut map = self.domain_db().rwlocks.write();
        ensure(!map.contains_key(&key), MrapiStatus::ErrRwlExists)?;
        map.insert(key, Arc::clone(&inner));
        Ok(RwLock {
            node: self.clone(),
            inner,
        })
    }

    /// `mrapi_rwl_get`.
    pub fn rwl_get(&self, key: u32) -> MrapiResult<RwLock> {
        self.check_alive()?;
        let inner = self
            .domain_db()
            .rwlocks
            .read()
            .get(&key)
            .cloned()
            .ok_or(MrapiStatus::ErrRwlInvalid)?;
        ensure(
            !inner.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrRwlInvalid,
        )?;
        Ok(RwLock {
            node: self.clone(),
            inner,
        })
    }
}

impl RwLock {
    /// The registry key.
    pub fn key(&self) -> u32 {
        self.inner.key
    }

    fn check_live(&self) -> MrapiResult<()> {
        self.node.check_alive()?;
        ensure(
            !self.inner.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrRwlInvalid,
        )
    }

    /// `mrapi_rwl_lock(MRAPI_RWL_READER)` — shared acquire.
    pub fn read_lock(&self, timeout: Duration) -> MrapiResult<()> {
        self.check_live()?;
        let mut st = self.inner.state.lock();
        let admissible = |st: &State, max: u32| {
            !st.writer_active && st.writers_waiting == 0 && st.active_readers < max
        };
        match finite_timeout(timeout) {
            None => {
                while !admissible(&st, self.inner.max_readers) {
                    self.inner.cv.wait(&mut st);
                    self.check_live()?;
                }
            }
            Some(budget) => {
                let deadline = std::time::Instant::now() + budget;
                while !admissible(&st, self.inner.max_readers) {
                    if self.inner.cv.wait_until(&mut st, deadline).timed_out() {
                        ensure(
                            admissible(&st, self.inner.max_readers),
                            MrapiStatus::Timeout,
                        )?;
                        break;
                    }
                    self.check_live()?;
                }
            }
        }
        st.active_readers += 1;
        Ok(())
    }

    /// `mrapi_rwl_lock(MRAPI_RWL_WRITER)` — exclusive acquire.
    pub fn write_lock(&self, timeout: Duration) -> MrapiResult<()> {
        self.check_live()?;
        let mut st = self.inner.state.lock();
        st.writers_waiting += 1;
        let free = |st: &State| !st.writer_active && st.active_readers == 0;
        let r = (|| -> MrapiResult<()> {
            match finite_timeout(timeout) {
                None => {
                    while !free(&st) {
                        self.inner.cv.wait(&mut st);
                        self.check_live()?;
                    }
                }
                Some(budget) => {
                    let deadline = std::time::Instant::now() + budget;
                    while !free(&st) {
                        if self.inner.cv.wait_until(&mut st, deadline).timed_out() {
                            ensure(free(&st), MrapiStatus::Timeout)?;
                            break;
                        }
                        self.check_live()?;
                    }
                }
            }
            Ok(())
        })();
        st.writers_waiting -= 1;
        match r {
            Ok(()) => {
                st.writer_active = true;
                Ok(())
            }
            Err(e) => {
                drop(st);
                // A reader admission window may have opened.
                self.inner.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Try a shared acquire without blocking.
    pub fn try_read_lock(&self) -> MrapiResult<()> {
        self.read_lock(Duration::ZERO)
    }

    /// Try an exclusive acquire without blocking.
    pub fn try_write_lock(&self) -> MrapiResult<()> {
        self.write_lock(Duration::ZERO)
    }

    /// `mrapi_rwl_unlock(MRAPI_RWL_READER)`.
    pub fn read_unlock(&self) -> MrapiResult<()> {
        self.check_live()?;
        let mut st = self.inner.state.lock();
        ensure(st.active_readers > 0, MrapiStatus::ErrParameter)?;
        st.active_readers -= 1;
        drop(st);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// `mrapi_rwl_unlock(MRAPI_RWL_WRITER)`.
    pub fn write_unlock(&self) -> MrapiResult<()> {
        self.check_live()?;
        let mut st = self.inner.state.lock();
        ensure(st.writer_active, MrapiStatus::ErrParameter)?;
        st.writer_active = false;
        drop(st);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// `mrapi_rwl_delete`.
    pub fn delete(self) -> MrapiResult<()> {
        self.check_live()?;
        self.inner.deleted.store(true, Ordering::Release);
        self.node
            .domain_db()
            .rwlocks
            .write()
            .remove(&self.inner.key);
        self.inner.cv.notify_all();
        Ok(())
    }
}

impl std::fmt::Debug for RwLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrapiRwLock")
            .field("key", &self.inner.key)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, MrapiSystem, NodeId, MRAPI_TIMEOUT_INFINITE};

    fn node() -> Node {
        MrapiSystem::new_t4240()
            .initialize(DomainId(1), NodeId(0))
            .unwrap()
    }

    #[test]
    fn readers_share_writers_exclude() {
        let n = node();
        let l = n.rwl_create(1, &RwLockAttributes::default()).unwrap();
        l.read_lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        l.read_lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        assert_eq!(l.try_write_lock().unwrap_err().0, MrapiStatus::Timeout);
        l.read_unlock().unwrap();
        l.read_unlock().unwrap();
        l.try_write_lock().unwrap();
        assert_eq!(l.try_read_lock().unwrap_err().0, MrapiStatus::Timeout);
        l.write_unlock().unwrap();
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let l = master.rwl_create(1, &RwLockAttributes::default()).unwrap();
        l.read_lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        let writer = master
            .thread_create(NodeId(1), |me| {
                let l = me.rwl_get(1).unwrap();
                l.write_lock(MRAPI_TIMEOUT_INFINITE).unwrap();
                l.write_unlock().unwrap();
            })
            .unwrap();
        // Give the writer time to queue.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            l.try_read_lock().unwrap_err().0,
            MrapiStatus::Timeout,
            "reader must queue behind a waiting writer"
        );
        l.read_unlock().unwrap();
        writer.join().unwrap();
        l.try_read_lock().unwrap();
        l.read_unlock().unwrap();
    }

    #[test]
    fn reader_limit_enforced() {
        let n = node();
        let l = n
            .rwl_create(1, &RwLockAttributes { max_readers: 2 })
            .unwrap();
        l.try_read_lock().unwrap();
        l.try_read_lock().unwrap();
        assert_eq!(l.try_read_lock().unwrap_err().0, MrapiStatus::Timeout);
        l.read_unlock().unwrap();
        l.try_read_lock().unwrap();
    }

    #[test]
    fn unbalanced_unlocks_rejected() {
        let n = node();
        let l = n.rwl_create(1, &RwLockAttributes::default()).unwrap();
        assert_eq!(l.read_unlock().unwrap_err().0, MrapiStatus::ErrParameter);
        assert_eq!(l.write_unlock().unwrap_err().0, MrapiStatus::ErrParameter);
    }

    #[test]
    fn stress_readers_and_writers_preserve_invariant() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let _l = master.rwl_create(1, &RwLockAttributes::default()).unwrap();
        // Shared cells: [0]=value copy A, [8]=value copy B. Writers keep them
        // equal under the write lock; readers must never see them differ.
        let _shm = master
            .shmem_create(
                2,
                16,
                &crate::ShmemAttributes {
                    use_malloc: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let workers: Vec<_> = (0..6)
            .map(|i| {
                master
                    .thread_create(NodeId(1 + i), move |me| {
                        let l = me.rwl_get(1).unwrap();
                        let shm = me.shmem_get(2).unwrap();
                        let mut violations = 0u32;
                        for k in 0..300u64 {
                            if i % 2 == 0 {
                                l.write_lock(MRAPI_TIMEOUT_INFINITE).unwrap();
                                shm.write_u64(0, k);
                                std::thread::yield_now();
                                shm.write_u64(8, k);
                                l.write_unlock().unwrap();
                            } else {
                                l.read_lock(MRAPI_TIMEOUT_INFINITE).unwrap();
                                if shm.read_u64(0) != shm.read_u64(8) {
                                    violations += 1;
                                }
                                l.read_unlock().unwrap();
                            }
                        }
                        violations
                    })
                    .unwrap()
            })
            .collect();
        let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 0, "readers observed a torn writer update");
    }

    #[test]
    fn delete_invalidates() {
        let n = node();
        let a = n.rwl_create(1, &RwLockAttributes::default()).unwrap();
        let b = n.rwl_get(1).unwrap();
        a.delete().unwrap();
        assert_eq!(b.try_read_lock().unwrap_err().0, MrapiStatus::ErrRwlInvalid);
    }
}
