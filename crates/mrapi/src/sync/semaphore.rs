//! MRAPI counting semaphores.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mca_sync::{Condvar, Mutex as PlMutex};

use crate::node::Node;
use crate::status::{ensure, MrapiResult, MrapiStatus};
use crate::sync::finite_timeout;

/// Creation attributes (`mrapi_sem_attributes_t` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemaphoreAttributes {
    /// Maximum count the semaphore may reach; posts beyond it fail with
    /// `MRAPI_ERR_PARAMETER`.
    pub max_count: u32,
}

impl Default for SemaphoreAttributes {
    fn default() -> Self {
        SemaphoreAttributes {
            max_count: u32::MAX,
        }
    }
}

/// Registry entry shared by every handle.
pub struct SemInner {
    key: u32,
    max_count: u32,
    count: PlMutex<u32>,
    cv: Condvar,
    deleted: AtomicBool,
}

/// A node's handle to an MRAPI semaphore.
pub struct Semaphore {
    node: Node,
    inner: Arc<SemInner>,
}

impl Node {
    /// `mrapi_sem_create` with an initial count.
    pub fn sem_create(
        &self,
        key: u32,
        initial: u32,
        attrs: &SemaphoreAttributes,
    ) -> MrapiResult<Semaphore> {
        self.check_alive()?;
        ensure(initial <= attrs.max_count, MrapiStatus::ErrParameter)?;
        let inner = Arc::new(SemInner {
            key,
            max_count: attrs.max_count,
            count: PlMutex::new(initial),
            cv: Condvar::new(),
            deleted: AtomicBool::new(false),
        });
        let mut map = self.domain_db().sems.write();
        ensure(!map.contains_key(&key), MrapiStatus::ErrSemExists)?;
        map.insert(key, Arc::clone(&inner));
        Ok(Semaphore {
            node: self.clone(),
            inner,
        })
    }

    /// `mrapi_sem_get`.
    pub fn sem_get(&self, key: u32) -> MrapiResult<Semaphore> {
        self.check_alive()?;
        let inner = self
            .domain_db()
            .sems
            .read()
            .get(&key)
            .cloned()
            .ok_or(MrapiStatus::ErrSemInvalid)?;
        ensure(
            !inner.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrSemInvalid,
        )?;
        Ok(Semaphore {
            node: self.clone(),
            inner,
        })
    }
}

impl Semaphore {
    /// The registry key.
    pub fn key(&self) -> u32 {
        self.inner.key
    }

    fn check_live(&self) -> MrapiResult<()> {
        self.node.check_alive()?;
        ensure(
            !self.inner.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrSemInvalid,
        )
    }

    /// `mrapi_sem_lock` (P / wait): decrement, blocking up to `timeout`
    /// while the count is zero.
    pub fn acquire(&self, timeout: Duration) -> MrapiResult<()> {
        self.check_live()?;
        let mut c = self.inner.count.lock();
        match finite_timeout(timeout) {
            None => {
                while *c == 0 {
                    self.inner.cv.wait(&mut c);
                    self.check_live()?;
                }
            }
            Some(budget) => {
                let deadline = std::time::Instant::now() + budget;
                while *c == 0 {
                    if self.inner.cv.wait_until(&mut c, deadline).timed_out() {
                        ensure(*c > 0, MrapiStatus::Timeout)?;
                        break;
                    }
                    self.check_live()?;
                }
            }
        }
        *c -= 1;
        Ok(())
    }

    /// `mrapi_sem_trylock` — decrement without blocking, or `MRAPI_TIMEOUT`.
    pub fn try_acquire(&self) -> MrapiResult<()> {
        self.check_live()?;
        let mut c = self.inner.count.lock();
        ensure(*c > 0, MrapiStatus::Timeout)?;
        *c -= 1;
        Ok(())
    }

    /// `mrapi_sem_unlock` (V / post): increment and wake one waiter.  Fails
    /// with `MRAPI_ERR_PARAMETER` if the count is already at `max_count`.
    pub fn release(&self) -> MrapiResult<()> {
        self.check_live()?;
        let mut c = self.inner.count.lock();
        ensure(*c < self.inner.max_count, MrapiStatus::ErrParameter)?;
        *c += 1;
        drop(c);
        self.inner.cv.notify_one();
        Ok(())
    }

    /// Current count (diagnostic snapshot).
    pub fn count(&self) -> u32 {
        *self.inner.count.lock()
    }

    /// `mrapi_sem_delete`.  Waiters are woken and observe
    /// `MRAPI_ERR_SEM_INVALID`.
    pub fn delete(self) -> MrapiResult<()> {
        self.check_live()?;
        self.inner.deleted.store(true, Ordering::Release);
        self.node.domain_db().sems.write().remove(&self.inner.key);
        self.inner.cv.notify_all();
        Ok(())
    }
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrapiSemaphore")
            .field("key", &self.inner.key)
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, MrapiSystem, NodeId, MRAPI_TIMEOUT_INFINITE};

    fn node() -> Node {
        MrapiSystem::new_t4240()
            .initialize(DomainId(1), NodeId(0))
            .unwrap()
    }

    #[test]
    fn counting_behaviour() {
        let n = node();
        let s = n.sem_create(1, 2, &SemaphoreAttributes::default()).unwrap();
        s.acquire(MRAPI_TIMEOUT_INFINITE).unwrap();
        s.acquire(MRAPI_TIMEOUT_INFINITE).unwrap();
        assert_eq!(s.try_acquire().unwrap_err().0, MrapiStatus::Timeout);
        s.release().unwrap();
        s.try_acquire().unwrap();
    }

    #[test]
    fn max_count_enforced() {
        let n = node();
        let s = n
            .sem_create(1, 1, &SemaphoreAttributes { max_count: 1 })
            .unwrap();
        assert_eq!(s.release().unwrap_err().0, MrapiStatus::ErrParameter);
        assert_eq!(
            n.sem_create(2, 5, &SemaphoreAttributes { max_count: 3 })
                .unwrap_err()
                .0,
            MrapiStatus::ErrParameter,
            "initial beyond max"
        );
    }

    #[test]
    fn timeout_then_success() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let s = master
            .sem_create(1, 0, &SemaphoreAttributes::default())
            .unwrap();
        assert_eq!(
            s.acquire(Duration::from_millis(5)).unwrap_err().0,
            MrapiStatus::Timeout
        );
        let poster = master
            .thread_create(NodeId(1), |me| {
                std::thread::sleep(Duration::from_millis(30));
                me.sem_get(1).unwrap().release().unwrap();
            })
            .unwrap();
        s.acquire(MRAPI_TIMEOUT_INFINITE).unwrap();
        poster.join().unwrap();
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        // Classic: a sem of 3 must never admit more than 3 at once.
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let _s = master
            .sem_create(1, 3, &SemaphoreAttributes::default())
            .unwrap();
        let gauge = master
            .shmem_create(
                9,
                16,
                &crate::ShmemAttributes {
                    use_malloc: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let workers: Vec<_> = (0..8)
            .map(|i| {
                master
                    .thread_create(NodeId(1 + i), move |me| {
                        let s = me.sem_get(1).unwrap();
                        let g = me.shmem_get(9).unwrap();
                        for _ in 0..50 {
                            s.acquire(MRAPI_TIMEOUT_INFINITE).unwrap();
                            let now = g.fetch_add_u64(0, 1) + 1;
                            // Track the high-water mark in word 1.
                            loop {
                                let hi = g.read_u64(8);
                                if now <= hi {
                                    break;
                                }
                                if g.as_words()[1]
                                    .compare_exchange(hi, now, Ordering::AcqRel, Ordering::Acquire)
                                    .is_ok()
                                {
                                    break;
                                }
                            }
                            std::thread::yield_now();
                            g.as_words()[0].fetch_sub(1, Ordering::AcqRel);
                            s.release().unwrap();
                        }
                    })
                    .unwrap()
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert!(
            gauge.read_u64(8) <= 3,
            "high-water {} exceeded sem count",
            gauge.read_u64(8)
        );
        assert_eq!(gauge.read_u64(0), 0);
    }

    #[test]
    fn delete_wakes_waiters_with_invalid() {
        let sys = MrapiSystem::new_t4240();
        let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let s = master
            .sem_create(1, 0, &SemaphoreAttributes::default())
            .unwrap();
        let waiter = master
            .thread_create(NodeId(1), |me| {
                let s = me.sem_get(1).unwrap();
                s.acquire(MRAPI_TIMEOUT_INFINITE).unwrap_err().0
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        s.delete().unwrap();
        assert_eq!(waiter.join().unwrap(), MrapiStatus::ErrSemInvalid);
    }
}
