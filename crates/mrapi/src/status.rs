//! MRAPI status codes and the crate error type.
//!
//! The C API reports every outcome through an `mrapi_status_t` out-parameter
//! (see the paper's Listing 2, where `MRAPI_SUCCESS` /
//! `MRAPI_ERR_NODE_NOTINIT` are checked explicitly).  Rust callers get a
//! `Result`, but the status vocabulary is preserved so code and tests can
//! speak the spec's language.

/// The MRAPI status vocabulary (the subset this implementation can emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MrapiStatus {
    /// Operation completed.
    Success,
    /// Calling node was never initialized (`MRAPI_ERR_NODE_NOTINIT`).
    ErrNodeNotInit,
    /// Node id already initialized in this domain (`MRAPI_ERR_NODE_INITFAILED`).
    ErrNodeInitFailed,
    /// Node id finalized or unknown (`MRAPI_ERR_NODE_INVALID`).
    ErrNodeInvalid,
    /// Domain id out of range or unknown (`MRAPI_ERR_DOMAIN_INVALID`).
    ErrDomainInvalid,
    /// Invalid function parameter (`MRAPI_ERR_PARAMETER`).
    ErrParameter,
    /// Shared-memory key already exists (`MRAPI_ERR_SHM_EXISTS`).
    ErrShmExists,
    /// Shared-memory key not found (`MRAPI_ERR_SHM_INVALID`).
    ErrShmInvalid,
    /// Attach refused or detach unbalanced (`MRAPI_ERR_SHM_ATTCH`).
    ErrShmAttach,
    /// Remote-memory id conflict (`MRAPI_ERR_RMEM_EXISTS`).
    ErrRmemExists,
    /// Remote-memory id not found or wrong access (`MRAPI_ERR_RMEM_INVALID`).
    ErrRmemInvalid,
    /// Read/write would fall outside the remote buffer (`MRAPI_ERR_RMEM_BLOCKED`).
    ErrRmemBounds,
    /// Mutex key already exists (`MRAPI_ERR_MUTEX_EXISTS`).
    ErrMutexExists,
    /// Mutex id not found or deleted (`MRAPI_ERR_MUTEX_INVALID`).
    ErrMutexInvalid,
    /// Lock key did not match the held lock (`MRAPI_ERR_MUTEX_KEY`).
    ErrMutexKey,
    /// Caller does not hold the lock (`MRAPI_ERR_MUTEX_NOTLOCKED`).
    ErrMutexNotLocked,
    /// Recursive lock attempted on a non-recursive mutex
    /// (`MRAPI_ERR_MUTEX_LOCKED`).
    ErrMutexAlreadyLocked,
    /// Semaphore key conflict (`MRAPI_ERR_SEM_EXISTS`).
    ErrSemExists,
    /// Semaphore id not found (`MRAPI_ERR_SEM_INVALID`).
    ErrSemInvalid,
    /// Reader/writer lock key conflict (`MRAPI_ERR_RWL_EXISTS`).
    ErrRwlExists,
    /// Reader/writer lock id not found (`MRAPI_ERR_RWL_INVALID`).
    ErrRwlInvalid,
    /// A timed wait expired (`MRAPI_TIMEOUT`).
    Timeout,
    /// Resource tree filter matched nothing (`MRAPI_ERR_RSRC_INVALID_TYPE`).
    ErrResourceInvalid,
    /// Out of simulated platform memory (`MRAPI_ERR_MEM_LIMIT`).
    ErrMemLimit,
}

impl MrapiStatus {
    /// Spec-style identifier (`"MRAPI_SUCCESS"`, `"MRAPI_ERR_NODE_NOTINIT"`...).
    pub fn spec_name(self) -> &'static str {
        match self {
            MrapiStatus::Success => "MRAPI_SUCCESS",
            MrapiStatus::ErrNodeNotInit => "MRAPI_ERR_NODE_NOTINIT",
            MrapiStatus::ErrNodeInitFailed => "MRAPI_ERR_NODE_INITFAILED",
            MrapiStatus::ErrNodeInvalid => "MRAPI_ERR_NODE_INVALID",
            MrapiStatus::ErrDomainInvalid => "MRAPI_ERR_DOMAIN_INVALID",
            MrapiStatus::ErrParameter => "MRAPI_ERR_PARAMETER",
            MrapiStatus::ErrShmExists => "MRAPI_ERR_SHM_EXISTS",
            MrapiStatus::ErrShmInvalid => "MRAPI_ERR_SHM_INVALID",
            MrapiStatus::ErrShmAttach => "MRAPI_ERR_SHM_ATTCH",
            MrapiStatus::ErrRmemExists => "MRAPI_ERR_RMEM_EXISTS",
            MrapiStatus::ErrRmemInvalid => "MRAPI_ERR_RMEM_INVALID",
            MrapiStatus::ErrRmemBounds => "MRAPI_ERR_RMEM_BLOCKED",
            MrapiStatus::ErrMutexExists => "MRAPI_ERR_MUTEX_EXISTS",
            MrapiStatus::ErrMutexInvalid => "MRAPI_ERR_MUTEX_INVALID",
            MrapiStatus::ErrMutexKey => "MRAPI_ERR_MUTEX_KEY",
            MrapiStatus::ErrMutexNotLocked => "MRAPI_ERR_MUTEX_NOTLOCKED",
            MrapiStatus::ErrMutexAlreadyLocked => "MRAPI_ERR_MUTEX_LOCKED",
            MrapiStatus::ErrSemExists => "MRAPI_ERR_SEM_EXISTS",
            MrapiStatus::ErrSemInvalid => "MRAPI_ERR_SEM_INVALID",
            MrapiStatus::ErrRwlExists => "MRAPI_ERR_RWL_EXISTS",
            MrapiStatus::ErrRwlInvalid => "MRAPI_ERR_RWL_INVALID",
            MrapiStatus::Timeout => "MRAPI_TIMEOUT",
            MrapiStatus::ErrResourceInvalid => "MRAPI_ERR_RSRC_INVALID_TYPE",
            MrapiStatus::ErrMemLimit => "MRAPI_ERR_MEM_LIMIT",
        }
    }

    /// Whether the status denotes success.
    pub fn is_success(self) -> bool {
        self == MrapiStatus::Success
    }
}

/// Error type carrying a non-success status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrapiError(pub MrapiStatus);

impl std::fmt::Display for MrapiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.spec_name())
    }
}

impl std::error::Error for MrapiError {}

impl From<MrapiStatus> for MrapiError {
    fn from(s: MrapiStatus) -> Self {
        debug_assert!(!s.is_success(), "success is not an error");
        MrapiError(s)
    }
}

/// Crate-wide result alias.
pub type MrapiResult<T> = Result<T, MrapiError>;

/// Helper: fail with `status` unless `cond` holds.
pub(crate) fn ensure(cond: bool, status: MrapiStatus) -> MrapiResult<()> {
    if cond {
        Ok(())
    } else {
        Err(MrapiError(status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_match_listing_2() {
        // The two codes the paper's Listing 2 checks explicitly.
        assert_eq!(MrapiStatus::Success.spec_name(), "MRAPI_SUCCESS");
        assert_eq!(
            MrapiStatus::ErrNodeNotInit.spec_name(),
            "MRAPI_ERR_NODE_NOTINIT"
        );
    }

    #[test]
    fn error_displays_spec_name() {
        let e = MrapiError(MrapiStatus::ErrMutexKey);
        assert_eq!(e.to_string(), "MRAPI_ERR_MUTEX_KEY");
    }

    #[test]
    fn ensure_gates() {
        assert!(ensure(true, MrapiStatus::ErrParameter).is_ok());
        assert_eq!(
            ensure(false, MrapiStatus::ErrParameter).unwrap_err().0,
            MrapiStatus::ErrParameter
        );
    }

    #[test]
    fn success_is_success_only() {
        assert!(MrapiStatus::Success.is_success());
        assert!(!MrapiStatus::Timeout.is_success());
    }
}
