//! # mca-mrapi — the Multicore Resource Management API
//!
//! A from-scratch implementation of MRAPI, the Multicore Association's
//! resource-management standard, as used (and extended) by the OpenMP-MCA
//! paper.  MRAPI abstracts the four resource classes an embedded runtime
//! needs (paper §2B):
//!
//! 1. **Computation entities** — [`node`]: domains and nodes with a
//!    domain-global database, *plus the paper's extension* (§5A.1):
//!    `mrapi_thread_create`-style worker-thread nodes, so node management can
//!    back an OpenMP thread team instead of heavyweight processes;
//! 2. **Memory primitives** — [`shmem`] (shared memory with key-based
//!    attach from many nodes, *plus the paper's `use_malloc` extension*
//!    (§5A.2) mapping allocations to the process heap for thread-level
//!    sharing) and [`rmem`] (remote memory reached directly or via DMA);
//! 3. **Synchronization primitives** — [`sync`]: mutexes with MRAPI lock
//!    keys and recursion, counting semaphores, and reader/writer locks, all
//!    with timeout support and shared-by-key lookup;
//! 4. **System resource metadata** — [`metadata`]: resource trees harvested
//!    from the simulated platform ([`mca_platform`]), used by the OpenMP
//!    runtime to discover online processors (§5B.4).
//!
//! ## Shape of the API
//!
//! The C API operates on a process-global runtime.  This crate makes the
//! system object explicit — [`MrapiSystem`] — so tests and simulations can
//! run many independent "boards" in one process; a process-global default is
//! available through [`MrapiSystem::global`].
//!
//! ```
//! use mca_mrapi::{MrapiSystem, NodeId, DomainId};
//! use mca_mrapi::shmem::ShmemAttributes;
//!
//! let sys = MrapiSystem::new_t4240();
//! let node = sys.initialize(DomainId(1), NodeId(0)).unwrap();
//!
//! // Paper extension 1: spawn a worker thread registered as node 1.
//! let worker = node.thread_create(NodeId(1), move |n| {
//!     assert_eq!(n.node_id().0, 1);
//!     42
//! }).unwrap();
//! assert_eq!(worker.join().unwrap(), 42);
//!
//! // Paper extension 2: heap-backed shared memory (gomp_malloc's path).
//! let attrs = ShmemAttributes { use_malloc: true, ..Default::default() };
//! let shm = node.shmem_create(0xBEEF, 4096, &attrs).unwrap();
//! shm.write_u64(0, 7);
//! assert_eq!(shm.read_u64(0), 7);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod filemap;
pub mod metadata;
pub mod node;
pub mod rmem;
pub mod shmem;
pub mod status;
pub mod sync;

mod db;

pub use db::MrapiSystem;
pub use fault::{FaultDecision, FaultPlan, FaultProbe, FaultSite, SiteObserver};
pub use filemap::FileMapping;
pub use node::{DomainId, Node, NodeAttributes, NodeId, WorkerNode};
pub use rmem::{RmemAccess, RmemAttributes, RmemHandle};
pub use shmem::{ShmemAttributes, ShmemHandle, ShmemKey};
pub use status::{MrapiError, MrapiStatus};
pub use sync::{Mutex as MrapiMutex, MutexKey, RwLock as MrapiRwLock, Semaphore as MrapiSemaphore};

/// MRAPI's "wait forever" timeout sentinel.
pub const MRAPI_TIMEOUT_INFINITE: std::time::Duration =
    std::time::Duration::from_secs(u64::MAX / 4);
