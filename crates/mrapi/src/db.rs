//! The MRAPI global database.
//!
//! MRAPI nodes in one domain share a *domain-global database* (paper §5A.1):
//! node registrations, shared-memory segments keyed by `shmem key`, and the
//! synchronization objects, all discoverable by key from any node.  This
//! module owns those registries; the public entry point is [`MrapiSystem`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use mca_platform::{MemoryMap, Topology};
use mca_sync::RwLock;

use crate::fault::{FaultDecision, FaultProbe, FaultSite, SiteObserver};
use crate::node::{DomainId, Node, NodeId, NodeRecord};
use crate::rmem::RmemBuffer;
use crate::shmem::ShmemSegment;
use crate::status::{ensure, MrapiError, MrapiResult, MrapiStatus};
use crate::sync::{MutexInner, RwLockInner, SemInner};

/// Registries for one MRAPI domain.
pub(crate) struct DomainDb {
    pub id: DomainId,
    pub nodes: RwLock<HashMap<u32, Arc<NodeRecord>>>,
    pub shmems: RwLock<HashMap<u32, Arc<ShmemSegment>>>,
    pub rmems: RwLock<HashMap<u32, Arc<RmemBuffer>>>,
    pub mutexes: RwLock<HashMap<u32, Arc<MutexInner>>>,
    pub sems: RwLock<HashMap<u32, Arc<SemInner>>>,
    pub rwlocks: RwLock<HashMap<u32, Arc<RwLockInner>>>,
}

impl DomainDb {
    fn new(id: DomainId) -> Self {
        DomainDb {
            id,
            nodes: RwLock::new(HashMap::new()),
            shmems: RwLock::new(HashMap::new()),
            rmems: RwLock::new(HashMap::new()),
            mutexes: RwLock::new(HashMap::new()),
            sems: RwLock::new(HashMap::new()),
            rwlocks: RwLock::new(HashMap::new()),
        }
    }
}

pub(crate) struct SystemInner {
    pub topo: Topology,
    pub mem_map: MemoryMap,
    pub domains: RwLock<HashMap<u32, Arc<DomainDb>>>,
    /// Accumulated simulated nanoseconds spent in modeled transfers
    /// (segment-shmem access, remote-memory DMA) — the simulation's cost
    /// ledger, readable via [`MrapiSystem::simulated_transfer_ns`].
    pub sim_ns: AtomicU64,
    /// Per-hw-thread utilization cells surfaced as dynamic metadata.
    pub utilization: Vec<Arc<AtomicU64>>,
    /// Fast gate: a bitmask of [`HOOK_FAULTS`] / [`HOOK_OBSERVER`],
    /// nonzero only while a fault probe or site observer is installed, so
    /// the boundary checks still cost one relaxed load in production.
    pub hooks: AtomicU8,
    pub fault_probe: RwLock<Option<Arc<dyn FaultProbe>>>,
    pub site_observer: RwLock<Option<Arc<dyn SiteObserver>>>,
}

/// [`SystemInner::hooks`] bit: a fault probe is installed.
const HOOK_FAULTS: u8 = 1;
/// [`SystemInner::hooks`] bit: a site observer is installed.
const HOOK_OBSERVER: u8 = 2;

/// One MRAPI "system": a board plus its domain databases.
///
/// Cloning is cheap (shared handle).  The C API's single implicit runtime is
/// available as [`MrapiSystem::global`], which models the paper's T4240RDB.
#[derive(Clone)]
pub struct MrapiSystem {
    pub(crate) inner: Arc<SystemInner>,
}

impl MrapiSystem {
    /// A system over an arbitrary platform topology.
    pub fn new(topo: Topology) -> Self {
        let mem_map = MemoryMap::for_topology(&topo);
        let utilization = (0..topo.num_hw_threads())
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        MrapiSystem {
            inner: Arc::new(SystemInner {
                topo,
                mem_map,
                domains: RwLock::new(HashMap::new()),
                sim_ns: AtomicU64::new(0),
                utilization,
                hooks: AtomicU8::new(0),
                fault_probe: RwLock::new(None),
                site_observer: RwLock::new(None),
            }),
        }
    }

    /// A system modeling the paper's T4240RDB board.
    pub fn new_t4240() -> Self {
        MrapiSystem::new(Topology::t4240rdb())
    }

    /// The process-global default system (T4240RDB model), mirroring the C
    /// API's implicit runtime.
    pub fn global() -> &'static MrapiSystem {
        static GLOBAL: OnceLock<MrapiSystem> = OnceLock::new();
        GLOBAL.get_or_init(MrapiSystem::new_t4240)
    }

    /// The platform topology this system models.
    pub fn topology(&self) -> &Topology {
        &self.inner.topo
    }

    /// The platform memory map (used by remote-memory windows).
    pub fn memory_map(&self) -> &MemoryMap {
        &self.inner.mem_map
    }

    /// Total simulated transfer time accumulated so far, nanoseconds.
    pub fn simulated_transfer_ns(&self) -> u64 {
        self.inner.sim_ns.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Install (or clear, with `None`) the fault probe consulted at every
    /// MRAPI boundary on this system.  With no probe installed the boundary
    /// check is a single relaxed atomic load.
    pub fn set_fault_probe(&self, probe: Option<Arc<dyn FaultProbe>>) {
        let enabled = probe.is_some();
        *self.inner.fault_probe.write() = probe;
        if enabled {
            self.inner.hooks.fetch_or(HOOK_FAULTS, Ordering::Release);
        } else {
            self.inner.hooks.fetch_and(!HOOK_FAULTS, Ordering::Release);
        }
    }

    /// Install (or clear, with `None`) a passive [`SiteObserver`] notified
    /// at every MRAPI boundary crossing.  Shares the fault probe's fast
    /// gate: with neither installed the boundary check is a single relaxed
    /// atomic load.
    pub fn set_site_observer(&self, observer: Option<Arc<dyn SiteObserver>>) {
        let enabled = observer.is_some();
        *self.inner.site_observer.write() = observer;
        if enabled {
            self.inner.hooks.fetch_or(HOOK_OBSERVER, Ordering::Release);
        } else {
            self.inner
                .hooks
                .fetch_and(!HOOK_OBSERVER, Ordering::Release);
        }
    }

    /// Whether a fault probe is currently installed.
    pub fn fault_injection_enabled(&self) -> bool {
        self.inner.hooks.load(Ordering::Relaxed) & HOOK_FAULTS != 0
    }

    /// Consult the fault probe at `site`: sleep out any ordered latency
    /// spike, then fail with the ordered status, if any.  The disabled
    /// path is one relaxed load.
    #[inline]
    pub(crate) fn fault_check(&self, site: FaultSite) -> MrapiResult<()> {
        if self.inner.hooks.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        self.fault_check_slow(site)
    }

    #[cold]
    fn fault_check_slow(&self, site: FaultSite) -> MrapiResult<()> {
        let decision = match self.inner.fault_probe.read().as_ref() {
            Some(probe) => probe.decide(site),
            None => FaultDecision::PASS,
        };
        if let Some(obs) = self.inner.site_observer.read().as_ref() {
            obs.observe(site, decision.fail);
        }
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.fail {
            Some(status) => Err(MrapiError(status)),
            None => Ok(()),
        }
    }

    /// `mrapi_initialize`: register `node_id` in `domain_id` and return the
    /// node handle every other operation hangs off.
    ///
    /// Fails with `MRAPI_ERR_NODE_INITFAILED` if the node id is already live
    /// in the domain.
    pub fn initialize(&self, domain_id: DomainId, node_id: NodeId) -> MrapiResult<Node> {
        self.fault_check(FaultSite::NodeInit)?;
        let domain = self.domain(domain_id);
        let record = Arc::new(NodeRecord::new(node_id));
        {
            let mut nodes = domain.nodes.write();
            ensure(
                !nodes.contains_key(&node_id.0),
                MrapiStatus::ErrNodeInitFailed,
            )?;
            nodes.insert(node_id.0, Arc::clone(&record));
        }
        Ok(Node::from_parts(self.clone(), domain, record))
    }

    /// Number of nodes currently registered in a domain (0 if the domain was
    /// never touched).
    pub fn node_count(&self, domain_id: DomainId) -> usize {
        self.inner
            .domains
            .read()
            .get(&domain_id.0)
            .map(|d| d.nodes.read().len())
            .unwrap_or(0)
    }

    /// Fetch-or-create the domain database.
    pub(crate) fn domain(&self, id: DomainId) -> Arc<DomainDb> {
        if let Some(d) = self.inner.domains.read().get(&id.0) {
            return Arc::clone(d);
        }
        let mut w = self.inner.domains.write();
        Arc::clone(w.entry(id.0).or_insert_with(|| Arc::new(DomainDb::new(id))))
    }

    /// Charge simulated transfer time to the ledger.
    pub(crate) fn charge_sim_ns(&self, ns: f64) {
        self.inner
            .sim_ns
            .fetch_add(ns as u64, std::sync::atomic::Ordering::Relaxed);
    }
}

impl std::fmt::Debug for MrapiSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrapiSystem")
            .field("platform", &self.inner.topo.name)
            .field("domains", &self.inner.domains.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialize_registers_and_rejects_duplicates() {
        let sys = MrapiSystem::new_t4240();
        let d = DomainId(7);
        let _n0 = sys.initialize(d, NodeId(0)).unwrap();
        let _n1 = sys.initialize(d, NodeId(1)).unwrap();
        assert_eq!(sys.node_count(d), 2);
        let err = sys.initialize(d, NodeId(0)).unwrap_err();
        assert_eq!(err.0, MrapiStatus::ErrNodeInitFailed);
    }

    #[test]
    fn domains_are_isolated() {
        let sys = MrapiSystem::new_t4240();
        sys.initialize(DomainId(1), NodeId(5)).unwrap();
        // Same node id in a different domain is fine.
        sys.initialize(DomainId(2), NodeId(5)).unwrap();
        assert_eq!(sys.node_count(DomainId(1)), 1);
        assert_eq!(sys.node_count(DomainId(2)), 1);
        assert_eq!(sys.node_count(DomainId(3)), 0);
    }

    #[test]
    fn systems_are_isolated_from_each_other() {
        let a = MrapiSystem::new_t4240();
        let b = MrapiSystem::new_t4240();
        a.initialize(DomainId(1), NodeId(0)).unwrap();
        assert_eq!(b.node_count(DomainId(1)), 0);
    }

    #[test]
    fn global_system_is_t4240() {
        let g = MrapiSystem::global();
        assert_eq!(g.topology().name, "T4240RDB");
        assert_eq!(g.topology().num_hw_threads(), 24);
    }

    #[test]
    fn fault_probe_gates_initialize() {
        use crate::fault::FaultPlan;
        let sys = MrapiSystem::new_t4240();
        assert!(!sys.fault_injection_enabled());
        let plan = Arc::new(FaultPlan::new(0).with_persistent(
            FaultSite::NodeInit,
            MrapiStatus::ErrNodeInitFailed,
            0,
        ));
        sys.set_fault_probe(Some(plan));
        assert!(sys.fault_injection_enabled());
        let err = sys.initialize(DomainId(1), NodeId(0)).unwrap_err();
        assert_eq!(err.0, MrapiStatus::ErrNodeInitFailed);
        // Clearing the probe restores normal operation.
        sys.set_fault_probe(None);
        assert!(!sys.fault_injection_enabled());
        sys.initialize(DomainId(1), NodeId(0)).unwrap();
    }

    #[test]
    fn sim_ledger_accumulates() {
        let sys = MrapiSystem::new_t4240();
        assert_eq!(sys.simulated_transfer_ns(), 0);
        sys.charge_sim_ns(1234.7);
        sys.charge_sim_ns(100.2);
        assert_eq!(sys.simulated_transfer_ns(), 1334);
    }
}
