//! MRAPI remote memory (paper §2B.2).
//!
//! Remote memory models "the access of distinct memories": a buffer that
//! lives in another device's address space.  MRAPI distinguishes two access
//! classes — memory that happens to be directly addressable, and memory that
//! must be reached through a transfer engine ("some other methods like DMA
//! will need to be used") — and hides the difference behind one read/write
//! API.
//!
//! In this reproduction the remote buffer is host memory standing in for an
//! accelerator's local store; the *behavioural* difference is preserved
//! through the platform cost model: every access is costed against the
//! owning [`mca_platform::MemoryRegion`]'s latency/bandwidth and charged to
//! the system's simulated-transfer ledger, and DMA-class reads/writes go
//! through an explicit transfer with a completion handle
//! ([`RmemTransfer`]), mirroring `mrapi_rmem_read_i`/`mrapi_rmem_write_i`
//! (the non-blocking variants) and `mrapi_rmem_read`/`write` (blocking).

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mca_platform::MemoryRegion;
use mca_sync::Mutex as PlMutex;

use crate::filemap::FileMapping;
use crate::node::Node;
use crate::status::{ensure, MrapiResult, MrapiStatus};

/// Access class of a remote buffer (`mrapi_rmem_atype_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmemAccess {
    /// Physically consecutive and directly addressable.
    Direct,
    /// Reached through a DMA engine; transfers are explicit.
    Dma,
}

/// Creation attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct RmemAttributes {
    /// How nodes reach the buffer: directly addressable or via DMA.
    pub access: RmemAccess,
    /// Which platform memory window hosts the buffer.  Defaults to the
    /// modeled accelerator window for DMA, DDR for direct.
    pub region: Option<String>,
}

impl Default for RmemAttributes {
    fn default() -> Self {
        RmemAttributes {
            access: RmemAccess::Dma,
            region: None,
        }
    }
}

/// Where a remote buffer's bytes actually live.
enum Storage {
    /// In-process registry buffer (the original single-process model).
    Heap(PlMutex<Vec<u8>>),
    /// `MAP_SHARED` file mapping reachable from other OS processes
    /// (the cluster's zero-copy result path).
    File(FileMapping),
}

impl Storage {
    fn len(&self) -> usize {
        match self {
            Storage::Heap(data) => data.lock().len(),
            Storage::File(map) => map.len(),
        }
    }

    /// Bounds-checked copy out; `false` means out of range.
    fn read(&self, offset: usize, out: &mut [u8]) -> bool {
        match self {
            Storage::Heap(data) => {
                let data = data.lock();
                let ok = offset
                    .checked_add(out.len())
                    .is_some_and(|e| e <= data.len());
                if ok {
                    out.copy_from_slice(&data[offset..offset + out.len()]);
                }
                ok
            }
            Storage::File(map) => map.read(offset, out),
        }
    }

    /// Bounds-checked copy in; `false` means out of range.
    fn write(&self, offset: usize, src: &[u8]) -> bool {
        match self {
            Storage::Heap(data) => {
                let mut data = data.lock();
                let ok = offset
                    .checked_add(src.len())
                    .is_some_and(|e| e <= data.len());
                if ok {
                    data[offset..offset + src.len()].copy_from_slice(src);
                }
                ok
            }
            Storage::File(map) => map.write(offset, src),
        }
    }
}

/// Registry entry for one remote buffer.
pub struct RmemBuffer {
    id: u32,
    access: RmemAccess,
    region: MemoryRegion,
    storage: Storage,
    /// True while the buffer is listed in the domain registry (attached
    /// foreign file segments never are — a peer process owns them).
    registered: bool,
    deleted: AtomicBool,
}

/// A node's handle to remote memory (`mrapi_rmem_hndl_t`).
pub struct RmemHandle {
    node: Node,
    buf: Arc<RmemBuffer>,
}

/// Completion handle for a non-blocking transfer (`mrapi_request_t`).
///
/// The byte copy happens eagerly (host memory is the stand-in); what the
/// handle tracks is the *modeled* transfer time, so callers can overlap
/// simulated compute with simulated DMA exactly as they would on the board.
#[derive(Debug)]
pub struct RmemTransfer {
    sim_ns: f64,
    done: bool,
}

impl RmemTransfer {
    /// `mrapi_test`: has the modeled transfer completed?  (Always true once
    /// polled — the simulation completes transfers at the next poll point.)
    pub fn test(&mut self) -> bool {
        self.done = true;
        self.done
    }

    /// `mrapi_wait`: block until complete; returns the modeled transfer
    /// nanoseconds for the caller's simulated-time accounting.
    pub fn wait(mut self) -> f64 {
        self.done = true;
        self.sim_ns
    }

    /// Modeled transfer duration in nanoseconds.
    pub fn sim_ns(&self) -> f64 {
        self.sim_ns
    }
}

impl Node {
    /// Resolve and validate the platform region for an rmem allocation.
    fn rmem_region(&self, size: usize, attrs: &RmemAttributes) -> MrapiResult<MemoryRegion> {
        ensure(size > 0, MrapiStatus::ErrParameter)?;
        let region_name = attrs.region.clone().unwrap_or_else(|| match attrs.access {
            RmemAccess::Dma => "accel-window".to_string(),
            RmemAccess::Direct => "ddr0".to_string(),
        });
        let region = self
            .system()
            .memory_map()
            .by_name(&region_name)
            .ok_or(MrapiStatus::ErrParameter)?
            .clone();
        ensure(size as u64 <= region.size, MrapiStatus::ErrMemLimit)?;
        if attrs.access == RmemAccess::Direct {
            ensure(
                region.class.directly_addressable(),
                MrapiStatus::ErrRmemInvalid,
            )?;
        }
        Ok(region)
    }

    /// Register a freshly built buffer in the domain database.
    fn rmem_register(&self, id: u32, buf: Arc<RmemBuffer>) -> MrapiResult<RmemHandle> {
        let mut map = self.domain_db().rmems.write();
        ensure(!map.contains_key(&id), MrapiStatus::ErrRmemExists)?;
        map.insert(id, Arc::clone(&buf));
        Ok(RmemHandle {
            node: self.clone(),
            buf,
        })
    }

    /// `mrapi_rmem_create` — allocate a remote buffer of `size` bytes.
    pub fn rmem_create(
        &self,
        id: u32,
        size: usize,
        attrs: &RmemAttributes,
    ) -> MrapiResult<RmemHandle> {
        self.check_alive()?;
        let region = self.rmem_region(size, attrs)?;
        let buf = Arc::new(RmemBuffer {
            id,
            access: attrs.access,
            region,
            storage: Storage::Heap(PlMutex::new(vec![0u8; size])),
            registered: true,
            deleted: AtomicBool::new(false),
        });
        self.rmem_register(id, buf)
    }

    /// Allocate a remote buffer whose bytes live in a `MAP_SHARED` file
    /// mapping at `path`, so a peer OS process can attach the same file
    /// with [`Node::rmem_attach_file`] and read results without a copy
    /// through any socket.  The file is created (or truncated) and sized
    /// to `size` bytes.
    pub fn rmem_create_file(
        &self,
        id: u32,
        path: &Path,
        size: usize,
        attrs: &RmemAttributes,
    ) -> MrapiResult<RmemHandle> {
        self.check_alive()?;
        let region = self.rmem_region(size, attrs)?;
        let map = FileMapping::create(path, size).map_err(|_| MrapiStatus::ErrRmemInvalid)?;
        let buf = Arc::new(RmemBuffer {
            id,
            access: attrs.access,
            region,
            storage: Storage::File(map),
            registered: true,
            deleted: AtomicBool::new(false),
        });
        self.rmem_register(id, buf)
    }

    /// Attach a file-backed remote buffer created by *another process*
    /// (its [`Node::rmem_create_file`]).  The segment is foreign: it is
    /// not entered in this process's domain registry, and
    /// [`RmemHandle::delete`] merely unmaps the local view — the owning
    /// process deletes the segment and removes the backing file.
    pub fn rmem_attach_file(
        &self,
        id: u32,
        path: &Path,
        attrs: &RmemAttributes,
    ) -> MrapiResult<RmemHandle> {
        self.check_alive()?;
        let map = FileMapping::open(path).map_err(|_| MrapiStatus::ErrRmemInvalid)?;
        let region = self.rmem_region(map.len(), attrs)?;
        let buf = Arc::new(RmemBuffer {
            id,
            access: attrs.access,
            region,
            storage: Storage::File(map),
            registered: false,
            deleted: AtomicBool::new(false),
        });
        Ok(RmemHandle {
            node: self.clone(),
            buf,
        })
    }

    /// `mrapi_rmem_get` + `attach`.
    pub fn rmem_get(&self, id: u32) -> MrapiResult<RmemHandle> {
        self.check_alive()?;
        let buf = self
            .domain_db()
            .rmems
            .read()
            .get(&id)
            .cloned()
            .ok_or(MrapiStatus::ErrRmemInvalid)?;
        ensure(
            !buf.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrRmemInvalid,
        )?;
        Ok(RmemHandle {
            node: self.clone(),
            buf,
        })
    }
}

impl RmemHandle {
    /// Buffer id.
    pub fn id(&self) -> u32 {
        self.buf.id
    }

    /// Access class.
    pub fn access(&self) -> RmemAccess {
        self.buf.access
    }

    /// Buffer size in bytes.
    pub fn len(&self) -> usize {
        self.buf.storage.len()
    }

    /// True only for the impossible zero-size buffer (kept for clippy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check_live(&self) -> MrapiResult<()> {
        self.node.check_alive()?;
        ensure(
            !self.buf.deleted.load(Ordering::Acquire),
            MrapiStatus::ErrRmemInvalid,
        )
    }

    fn transfer(&self, bytes: usize) -> RmemTransfer {
        let ns = self.buf.region.transfer_ns(bytes as u64);
        self.node.system().charge_sim_ns(ns);
        RmemTransfer {
            sim_ns: ns,
            done: false,
        }
    }

    /// `mrapi_rmem_read` — blocking read of `out.len()` bytes at `offset`.
    /// Returns the modeled transfer nanoseconds.
    pub fn read(&self, offset: usize, out: &mut [u8]) -> MrapiResult<f64> {
        Ok(self.read_nb(offset, out)?.wait())
    }

    /// `mrapi_rmem_write` — blocking write.  Returns modeled nanoseconds.
    pub fn write(&self, offset: usize, data: &[u8]) -> MrapiResult<f64> {
        Ok(self.write_nb(offset, data)?.wait())
    }

    /// `mrapi_rmem_read_i` — non-blocking read; the bytes are valid when the
    /// returned transfer is waited/tested.
    pub fn read_nb(&self, offset: usize, out: &mut [u8]) -> MrapiResult<RmemTransfer> {
        self.check_live()?;
        ensure(
            self.buf.storage.read(offset, out),
            MrapiStatus::ErrRmemBounds,
        )?;
        Ok(self.transfer(out.len()))
    }

    /// `mrapi_rmem_write_i` — non-blocking write.
    pub fn write_nb(&self, offset: usize, src: &[u8]) -> MrapiResult<RmemTransfer> {
        self.check_live()?;
        ensure(
            self.buf.storage.write(offset, src),
            MrapiStatus::ErrRmemBounds,
        )?;
        Ok(self.transfer(src.len()))
    }

    /// `mrapi_rmem_delete`.  For attached foreign segments
    /// ([`Node::rmem_attach_file`]) this only unmaps the local view.
    pub fn delete(self) -> MrapiResult<()> {
        self.check_live()?;
        self.buf.deleted.store(true, Ordering::Release);
        if self.buf.registered {
            self.node.domain_db().rmems.write().remove(&self.buf.id);
        }
        Ok(())
    }
}

impl std::fmt::Debug for RmemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmemHandle")
            .field("id", &self.buf.id)
            .field("access", &self.buf.access)
            .field("region", &self.buf.region.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, MrapiSystem, NodeId};

    fn node_on(sys: &MrapiSystem) -> Node {
        sys.initialize(DomainId(1), NodeId(0)).unwrap()
    }

    #[test]
    fn roundtrip_charges_dma_costs() {
        let sys = MrapiSystem::new_t4240();
        let n = node_on(&sys);
        let r = n.rmem_create(1, 4096, &RmemAttributes::default()).unwrap();
        assert_eq!(r.access(), RmemAccess::Dma);
        let before = sys.simulated_transfer_ns();
        let ns = r.write(0, b"accelerator payload").unwrap();
        assert!(ns >= 900.0, "DMA latency floor: {ns}");
        let mut out = [0u8; 19];
        r.read(0, &mut out).unwrap();
        assert_eq!(&out, b"accelerator payload");
        assert!(sys.simulated_transfer_ns() > before);
    }

    #[test]
    fn bounds_are_enforced() {
        let sys = MrapiSystem::new_t4240();
        let n = node_on(&sys);
        let r = n.rmem_create(1, 16, &RmemAttributes::default()).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(
            r.read(12, &mut buf).unwrap_err().0,
            MrapiStatus::ErrRmemBounds
        );
        assert_eq!(
            r.write(usize::MAX, &buf).unwrap_err().0,
            MrapiStatus::ErrRmemBounds
        );
        r.read(8, &mut buf).unwrap();
    }

    #[test]
    fn direct_access_requires_addressable_region() {
        let sys = MrapiSystem::new_t4240();
        let n = node_on(&sys);
        let err = n
            .rmem_create(
                1,
                16,
                &RmemAttributes {
                    access: RmemAccess::Direct,
                    region: Some("accel-window".into()),
                },
            )
            .unwrap_err();
        assert_eq!(
            err.0,
            MrapiStatus::ErrRmemInvalid,
            "DMA-only window is not direct"
        );
        let ok = n
            .rmem_create(
                1,
                16,
                &RmemAttributes {
                    access: RmemAccess::Direct,
                    region: None,
                },
            )
            .unwrap();
        assert_eq!(ok.access(), RmemAccess::Direct);
    }

    #[test]
    fn nonblocking_transfer_protocol() {
        let sys = MrapiSystem::new_t4240();
        let n = node_on(&sys);
        let r = n.rmem_create(1, 64, &RmemAttributes::default()).unwrap();
        let t = r.write_nb(0, &[1, 2, 3]).unwrap();
        assert!(t.sim_ns() > 0.0);
        let mut t = t;
        assert!(t.test());
        let mut out = [0u8; 3];
        let t2 = r.read_nb(0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
        let _ = t2.wait();
    }

    #[test]
    fn cross_node_sharing_and_delete() {
        let sys = MrapiSystem::new_t4240();
        let master = node_on(&sys);
        let r = master
            .rmem_create(5, 32, &RmemAttributes::default())
            .unwrap();
        r.write(0, &[9; 8]).unwrap();
        let w = master
            .thread_create(NodeId(1), |me| {
                let r = me.rmem_get(5).unwrap();
                let mut out = [0u8; 8];
                r.read(0, &mut out).unwrap();
                out[0]
            })
            .unwrap();
        assert_eq!(w.join().unwrap(), 9);
        r.delete().unwrap();
        assert_eq!(
            master.rmem_get(5).unwrap_err().0,
            MrapiStatus::ErrRmemInvalid
        );
    }

    #[test]
    fn id_clash_and_zero_size() {
        let sys = MrapiSystem::new_t4240();
        let n = node_on(&sys);
        let _a = n.rmem_create(1, 8, &RmemAttributes::default()).unwrap();
        assert_eq!(
            n.rmem_create(1, 8, &RmemAttributes::default())
                .unwrap_err()
                .0,
            MrapiStatus::ErrRmemExists
        );
        assert_eq!(
            n.rmem_create(2, 0, &RmemAttributes::default())
                .unwrap_err()
                .0,
            MrapiStatus::ErrParameter
        );
    }

    #[test]
    fn file_backed_create_attach_roundtrip() {
        let path = std::env::temp_dir().join(format!("mrapi-rmem-file-{}", std::process::id()));
        let sys = MrapiSystem::new_t4240();
        let owner = node_on(&sys);
        let seg = owner
            .rmem_create_file(9, &path, 4096, &RmemAttributes::default())
            .unwrap();
        seg.write(64, b"worker result bytes").unwrap();

        // A second system stands in for the peer process: it attaches the
        // same backing file without touching the owner's registry.
        let peer_sys = MrapiSystem::new_t4240();
        let peer = peer_sys.initialize(DomainId(2), NodeId(0)).unwrap();
        let view = peer
            .rmem_attach_file(9, &path, &RmemAttributes::default())
            .unwrap();
        assert_eq!(view.len(), 4096);
        let mut out = [0u8; 19];
        view.read(64, &mut out).unwrap();
        assert_eq!(&out, b"worker result bytes");

        // Attached view's delete is local; the owner's id stays valid.
        view.delete().unwrap();
        assert!(owner.rmem_get(9).is_ok());
        seg.delete().unwrap();
        assert_eq!(
            owner.rmem_get(9).unwrap_err().0,
            MrapiStatus::ErrRmemInvalid
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn larger_transfers_cost_more() {
        let sys = MrapiSystem::new_t4240();
        let n = node_on(&sys);
        let r = n
            .rmem_create(1, 1 << 20, &RmemAttributes::default())
            .unwrap();
        let small = r.write(0, &[0u8; 64]).unwrap();
        let big = r.write(0, &vec![0u8; 1 << 20]).unwrap(); // heap: 1 MiB
        assert!(big > small * 10.0);
    }
}
