//! MRAPI system resource metadata (paper §2B.4, §5B.4).
//!
//! `mrapi_resources_get` returns a tree describing the target system's
//! resources, optionally filtered by type.  The OpenMP-MCA runtime "mainly
//! used the MRAPI metadata trees to retrieve the available number of
//! processors online for node/thread management" — reproduced here as
//! [`Node::online_processors`], the call the `romp` MCA backend makes when
//! sizing a default team.
//!
//! Dynamic attributes (per-CPU utilization) are backed by the system's
//! atomic cells; [`Node::report_utilization`] lets schedulers publish load,
//! and a registered callback fires when a watched attribute changes —
//! MRAPI's `mrapi_resource_register_callback` facility.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mca_platform::resource::{ResourceAttr, ResourceKind, ResourceTree};
use mca_sync::Mutex as PlMutex;

use crate::node::Node;
use crate::status::{ensure, MrapiResult, MrapiStatus};

type Callback = Box<dyn Fn(usize, u64) + Send + Sync>;

/// Watchers registered against utilization changes; per-system storage
/// would live in the database — we keep it simple with a per-handle list.
pub struct ResourceWatch {
    node: Node,
    callbacks: PlMutex<Vec<(usize, Callback)>>,
}

impl Node {
    /// `mrapi_resources_get` — the full resource tree for the system this
    /// node runs on, with live utilization cells attached.
    pub fn resources_get(&self) -> MrapiResult<ResourceTree> {
        self.check_alive()?;
        let mut tree = ResourceTree::from_topology(self.system().topology());
        // Splice the system's live utilization cells into the tree so
        // repeated calls observe updates.
        let cells = self.system().inner.utilization.clone();
        let mut idx = 0usize;
        fn splice(
            node: &mut mca_platform::resource::ResourceNode,
            cells: &[Arc<std::sync::atomic::AtomicU64>],
            idx: &mut usize,
        ) {
            if node.kind == ResourceKind::HwThread {
                for (k, a) in node.attrs.iter_mut() {
                    if k == "utilization" {
                        if let Some(cell) = cells.get(*idx) {
                            *a = ResourceAttr::DynamicU64(Arc::clone(cell));
                        }
                    }
                }
                *idx += 1;
            }
            for c in node.children.iter_mut() {
                splice(c, cells, idx);
            }
        }
        splice(&mut tree.root, &cells, &mut idx);
        Ok(tree)
    }

    /// `mrapi_resources_get` with a type filter — only nodes of `kind`.
    pub fn resources_get_filtered(&self, kind: ResourceKind) -> MrapiResult<ResourceTree> {
        let tree = self.resources_get()?;
        let filtered = tree.filter_kind(kind);
        ensure(
            !filtered.root.children.is_empty(),
            MrapiStatus::ErrResourceInvalid,
        )?;
        Ok(filtered)
    }

    /// The paper's §5B.4 use case: the number of online processors, for
    /// sizing the OpenMP thread team.
    pub fn online_processors(&self) -> MrapiResult<usize> {
        Ok(self.resources_get()?.online_processors())
    }

    /// Publish a utilization sample (0–100) for a hardware thread; visible
    /// through every tree's dynamic attribute and to registered callbacks.
    pub fn report_utilization(&self, hw_thread: usize, percent: u64) -> MrapiResult<()> {
        self.check_alive()?;
        let cells = &self.system().inner.utilization;
        let cell = cells.get(hw_thread).ok_or(MrapiStatus::ErrParameter)?;
        cell.store(percent, Ordering::Release);
        Ok(())
    }

    /// Read back a utilization sample.
    pub fn utilization(&self, hw_thread: usize) -> MrapiResult<u64> {
        self.check_alive()?;
        let cells = &self.system().inner.utilization;
        Ok(cells
            .get(hw_thread)
            .ok_or(MrapiStatus::ErrParameter)?
            .load(Ordering::Acquire))
    }

    /// `mrapi_resource_register_callback` — build a watch object; callbacks
    /// fire from [`ResourceWatch::publish`], the simulation's event source.
    pub fn resource_watch(&self) -> ResourceWatch {
        ResourceWatch {
            node: self.clone(),
            callbacks: PlMutex::new(Vec::new()),
        }
    }
}

impl ResourceWatch {
    /// Watch one hardware thread's utilization attribute.
    pub fn register(
        &self,
        hw_thread: usize,
        cb: impl Fn(usize, u64) + Send + Sync + 'static,
    ) -> MrapiResult<()> {
        ensure(
            hw_thread < self.node.system().topology().num_hw_threads(),
            MrapiStatus::ErrParameter,
        )?;
        self.callbacks.lock().push((hw_thread, Box::new(cb)));
        Ok(())
    }

    /// Publish a new sample: stores it and fires matching callbacks —
    /// the simulated equivalent of the hardware event MRAPI hooks.
    pub fn publish(&self, hw_thread: usize, percent: u64) -> MrapiResult<()> {
        self.node.report_utilization(hw_thread, percent)?;
        for (t, cb) in self.callbacks.lock().iter() {
            if *t == hw_thread {
                cb(hw_thread, percent);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, MrapiSystem, NodeId};
    use std::sync::atomic::AtomicU64;

    fn node() -> Node {
        MrapiSystem::new_t4240()
            .initialize(DomainId(1), NodeId(0))
            .unwrap()
    }

    #[test]
    fn online_processors_matches_board() {
        let n = node();
        assert_eq!(n.online_processors().unwrap(), 24);
    }

    #[test]
    fn filtered_tree_and_invalid_filter() {
        let n = node();
        let cores = n.resources_get_filtered(ResourceKind::Core).unwrap();
        assert_eq!(cores.root.children.len(), 12);
        // The T4240 model has memory nodes, so every kind we expose matches;
        // filtering a host model for L3-ish fabric children still works.
        let caches = n.resources_get_filtered(ResourceKind::Cache).unwrap();
        assert_eq!(caches.root.children.len(), 28);
    }

    #[test]
    fn utilization_round_trips_through_tree() {
        let n = node();
        n.report_utilization(3, 85).unwrap();
        assert_eq!(n.utilization(3).unwrap(), 85);
        // A tree fetched *after* the update sees it via the dynamic cell.
        let tree = n.resources_get().unwrap();
        let mut seen = None;
        tree.root.walk(&mut |r| {
            if r.name == "cpu3" {
                seen = r.attr("utilization").and_then(|a| a.as_u64());
            }
        });
        assert_eq!(seen, Some(85));
        // And a tree fetched *before* an update also tracks it (live cells).
        n.report_utilization(3, 12).unwrap();
        let mut seen2 = None;
        tree.root.walk(&mut |r| {
            if r.name == "cpu3" {
                seen2 = r.attr("utilization").and_then(|a| a.as_u64());
            }
        });
        assert_eq!(seen2, Some(12));
    }

    #[test]
    fn out_of_range_cpu_rejected() {
        let n = node();
        assert_eq!(
            n.report_utilization(24, 1).unwrap_err().0,
            MrapiStatus::ErrParameter
        );
        assert_eq!(n.utilization(99).unwrap_err().0, MrapiStatus::ErrParameter);
    }

    #[test]
    fn callbacks_fire_on_publish() {
        let n = node();
        let w = n.resource_watch();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        w.register(5, move |cpu, pct| {
            assert_eq!(cpu, 5);
            h.fetch_add(pct, Ordering::Relaxed);
        })
        .unwrap();
        w.publish(5, 40).unwrap();
        w.publish(6, 99).unwrap(); // different cpu: no callback
        w.publish(5, 2).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 42);
        assert!(w.register(99, |_, _| {}).is_err());
    }

    #[test]
    fn finalized_node_cannot_query() {
        let n = node();
        let c = n.clone();
        n.finalize().unwrap();
        assert_eq!(
            c.online_processors().unwrap_err().0,
            MrapiStatus::ErrNodeNotInit
        );
    }
}
