//! Domains, nodes, and the paper's thread-level node extension.
//!
//! An MRAPI *node* is "an independent unit of execution" — a process, a
//! thread, a thread pool or even a hardware accelerator (paper §2B.1).  A
//! *domain* is a global system entity comprising a team of nodes.  Stock
//! MRAPI maps nodes onto processes; the paper's §5A.1 extension adds
//! `mrapi_thread_create`, which creates a *worker thread* bound to a fresh
//! node id and registers it in the domain-global database — the foundation
//! for backing an OpenMP thread team with MRAPI node management.
//!
//! [`Node::thread_create`] reproduces that extension: it registers the new
//! node, spawns the thread, hands the thread its own [`Node`] handle, and
//! [`WorkerNode::join`] finalizes the node when the work is done — exactly
//! the lifecycle the paper describes for a parallel region's workers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use crate::db::{DomainDb, MrapiSystem};
use crate::fault::FaultSite;
use crate::status::{ensure, MrapiResult, MrapiStatus};

/// MRAPI domain identifier (`mrapi_domain_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

/// MRAPI node identifier (`mrapi_node_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What kind of execution unit backs a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The caller that ran `mrapi_initialize` (a "process-level" node).
    Caller,
    /// A worker thread created through the paper's extension.
    WorkerThread,
}

/// Optional attributes for node creation (`mrapi_node_attributes_t` subset).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeAttributes {
    /// Preferred hardware thread on the modeled platform (affinity hint).
    pub affinity_hw_thread: Option<usize>,
    /// Human-readable label for diagnostics.
    pub name: Option<String>,
}

/// Registry entry for one node (lives in the domain-global database).
pub struct NodeRecord {
    pub(crate) id: NodeId,
    pub(crate) kind: NodeKind,
    pub(crate) attrs: NodeAttributes,
    pub(crate) alive: AtomicBool,
    /// Simulated-work counter the owner may bump; surfaced in metadata.
    pub(crate) work_units: AtomicU64,
}

impl NodeRecord {
    pub(crate) fn new(id: NodeId) -> Self {
        NodeRecord {
            id,
            kind: NodeKind::Caller,
            attrs: NodeAttributes::default(),
            alive: AtomicBool::new(true),
            work_units: AtomicU64::new(0),
        }
    }

    fn new_worker(id: NodeId, attrs: NodeAttributes) -> Self {
        NodeRecord {
            id,
            kind: NodeKind::WorkerThread,
            attrs,
            alive: AtomicBool::new(true),
            work_units: AtomicU64::new(0),
        }
    }
}

/// A live node handle: the receiver for every MRAPI operation.
///
/// Clones share the same registration; [`Node::finalize`] deregisters it
/// (any clone may do so; later operations on other clones fail with
/// `MRAPI_ERR_NODE_NOTINIT`).
#[derive(Clone)]
pub struct Node {
    sys: MrapiSystem,
    domain: Arc<DomainDb>,
    record: Arc<NodeRecord>,
}

impl Node {
    pub(crate) fn from_parts(
        sys: MrapiSystem,
        domain: Arc<DomainDb>,
        record: Arc<NodeRecord>,
    ) -> Self {
        Node {
            sys,
            domain,
            record,
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.record.id
    }

    /// The owning domain's id.
    pub fn domain_id(&self) -> DomainId {
        self.domain.id
    }

    /// The system this node lives on.
    pub fn system(&self) -> &MrapiSystem {
        &self.sys
    }

    /// What backs this node.
    pub fn kind(&self) -> NodeKind {
        self.record.kind
    }

    /// Node attributes captured at creation.
    pub fn attributes(&self) -> &NodeAttributes {
        &self.record.attrs
    }

    /// `mrapi_initialized`: whether this node is still registered —
    /// the check the paper's Listing 2 performs before creating threads.
    pub fn is_initialized(&self) -> bool {
        self.record.alive.load(Ordering::Acquire)
    }

    pub(crate) fn check_alive(&self) -> MrapiResult<()> {
        ensure(self.is_initialized(), MrapiStatus::ErrNodeNotInit)
    }

    pub(crate) fn domain_db(&self) -> &Arc<DomainDb> {
        &self.domain
    }

    /// Record simulated work units against this node (visible via metadata).
    pub fn add_work_units(&self, units: u64) {
        self.record.work_units.fetch_add(units, Ordering::Relaxed);
    }

    /// Work units recorded so far.
    pub fn work_units(&self) -> u64 {
        self.record.work_units.load(Ordering::Relaxed)
    }

    /// **Paper extension (§5A.1, Listing 2)** — `mrapi_thread_create`.
    ///
    /// Registers `new_id` as a fresh worker node in this node's domain,
    /// spawns an OS thread for it, and runs `f` on that thread with the
    /// worker's own [`Node`] handle.  Fails with
    /// `MRAPI_ERR_NODE_NOTINIT` if the calling node was finalized (the exact
    /// check in Listing 2) and `MRAPI_ERR_NODE_INITFAILED` on an id clash.
    pub fn thread_create<T, F>(&self, new_id: NodeId, f: F) -> MrapiResult<WorkerNode<T>>
    where
        T: Send + 'static,
        F: FnOnce(Node) -> T + Send + 'static,
    {
        self.thread_create_with_attrs(new_id, NodeAttributes::default(), f)
    }

    /// [`Node::thread_create`] with explicit node attributes (affinity hint,
    /// label).  The affinity hint names a hardware thread on the modeled
    /// platform; it is recorded for metadata/placement, not enforced by the
    /// host OS.
    pub fn thread_create_with_attrs<T, F>(
        &self,
        new_id: NodeId,
        attrs: NodeAttributes,
        f: F,
    ) -> MrapiResult<WorkerNode<T>>
    where
        T: Send + 'static,
        F: FnOnce(Node) -> T + Send + 'static,
    {
        self.check_alive()?;
        self.sys.fault_check(FaultSite::NodeCreate)?;
        if let Some(cpu) = attrs.affinity_hw_thread {
            ensure(
                cpu < self.sys.topology().num_hw_threads(),
                MrapiStatus::ErrParameter,
            )?;
        }
        let record = Arc::new(NodeRecord::new_worker(new_id, attrs));
        {
            let mut nodes = self.domain.nodes.write();
            ensure(
                !nodes.contains_key(&new_id.0),
                MrapiStatus::ErrNodeInitFailed,
            )?;
            nodes.insert(new_id.0, Arc::clone(&record));
        }
        let child = Node {
            sys: self.sys.clone(),
            domain: Arc::clone(&self.domain),
            record: Arc::clone(&record),
        };
        let label = child
            .record
            .attrs
            .name
            .clone()
            .unwrap_or_else(|| format!("mrapi-node-{}-{}", self.domain.id.0, new_id.0));
        let handle = thread::Builder::new()
            .name(label)
            .spawn(move || f(child))
            .map_err(|_| MrapiStatus::ErrNodeInitFailed)?;
        Ok(WorkerNode {
            handle,
            record,
            domain: Arc::clone(&self.domain),
        })
    }

    /// `mrapi_finalize`: deregister this node from the domain database.
    ///
    /// Fails with `MRAPI_ERR_NODE_NOTINIT` if already finalized (e.g. by a
    /// clone of this handle).
    pub fn finalize(self) -> MrapiResult<()> {
        self.check_alive()?;
        self.record.alive.store(false, Ordering::Release);
        self.domain.nodes.write().remove(&self.record.id.0);
        Ok(())
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("domain", &self.domain.id.0)
            .field("node", &self.record.id.0)
            .field("kind", &self.record.kind)
            .field("alive", &self.is_initialized())
            .finish()
    }
}

/// Join handle for a worker node created by [`Node::thread_create`].
///
/// Joining finalizes the worker's registration — the paper's "the MRAPI
/// node, and its associated worker thread, will be finalized by the MRAPI
/// routines" (§5B.1).
pub struct WorkerNode<T> {
    handle: thread::JoinHandle<T>,
    record: Arc<NodeRecord>,
    domain: Arc<DomainDb>,
}

impl<T> WorkerNode<T> {
    /// The worker's node id.
    pub fn node_id(&self) -> NodeId {
        self.record.id
    }

    /// Whether the worker thread has already returned.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Wait for the worker, deregister its node, and return the closure's
    /// value.  Worker panics are propagated as `Err` exactly like
    /// [`std::thread::JoinHandle::join`]; the node is deregistered either
    /// way.
    pub fn join(self) -> thread::Result<T> {
        let out = self.handle.join();
        self.record.alive.store(false, Ordering::Release);
        self.domain.nodes.write().remove(&self.record.id.0);
        out
    }
}

impl<T> std::fmt::Debug for WorkerNode<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerNode")
            .field("node", &self.record.id.0)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MrapiSystem {
        MrapiSystem::new_t4240()
    }

    #[test]
    fn worker_lifecycle_matches_listing_2() {
        let s = sys();
        let master = s.initialize(DomainId(1), NodeId(0)).unwrap();
        assert!(master.is_initialized());
        let w = master
            .thread_create(NodeId(1), |me| {
                assert!(me.is_initialized());
                assert_eq!(me.kind(), NodeKind::WorkerThread);
                assert_eq!(me.domain_id(), DomainId(1));
                me.node_id().0 * 10
            })
            .unwrap();
        assert_eq!(
            s.node_count(DomainId(1)),
            2,
            "worker registered in global database"
        );
        assert_eq!(w.join().unwrap(), 10);
        assert_eq!(s.node_count(DomainId(1)), 1, "worker finalized on join");
    }

    #[test]
    fn thread_create_from_finalized_node_fails_like_listing_2() {
        let s = sys();
        let master = s.initialize(DomainId(1), NodeId(0)).unwrap();
        let clone = master.clone();
        master.finalize().unwrap();
        let err = clone.thread_create(NodeId(1), |_| ()).unwrap_err();
        assert_eq!(err.0, MrapiStatus::ErrNodeNotInit);
    }

    #[test]
    fn duplicate_worker_id_rejected() {
        let s = sys();
        let master = s.initialize(DomainId(1), NodeId(0)).unwrap();
        let w = master
            .thread_create(NodeId(7), |_| {
                std::thread::sleep(std::time::Duration::from_millis(20))
            })
            .unwrap();
        let err = master.thread_create(NodeId(7), |_| ()).unwrap_err();
        assert_eq!(err.0, MrapiStatus::ErrNodeInitFailed);
        w.join().unwrap();
        // After join the id is free again.
        master
            .thread_create(NodeId(7), |_| ())
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn double_finalize_fails() {
        let s = sys();
        let n = s.initialize(DomainId(1), NodeId(0)).unwrap();
        let c = n.clone();
        n.finalize().unwrap();
        assert_eq!(c.finalize().unwrap_err().0, MrapiStatus::ErrNodeNotInit);
    }

    #[test]
    fn worker_panic_propagates_but_deregisters() {
        let s = sys();
        let master = s.initialize(DomainId(1), NodeId(0)).unwrap();
        let w = master.thread_create(NodeId(1), |_| panic!("boom")).unwrap();
        assert!(w.join().is_err());
        assert_eq!(s.node_count(DomainId(1)), 1);
    }

    #[test]
    fn affinity_hint_validated_against_platform() {
        let s = sys();
        let master = s.initialize(DomainId(1), NodeId(0)).unwrap();
        let bad = NodeAttributes {
            affinity_hw_thread: Some(99),
            name: None,
        };
        assert_eq!(
            master
                .thread_create_with_attrs(NodeId(1), bad, |_| ())
                .unwrap_err()
                .0,
            MrapiStatus::ErrParameter
        );
        let good = NodeAttributes {
            affinity_hw_thread: Some(23),
            name: Some("w23".into()),
        };
        let w = master
            .thread_create_with_attrs(NodeId(1), good, |me| {
                me.attributes().affinity_hw_thread.unwrap()
            })
            .unwrap();
        assert_eq!(w.join().unwrap(), 23);
    }

    #[test]
    fn many_workers_one_per_hw_thread() {
        let s = sys();
        let master = s.initialize(DomainId(1), NodeId(0)).unwrap();
        let workers: Vec<_> = (0..24)
            .map(|i| {
                master
                    .thread_create(NodeId(100 + i), move |me| {
                        me.add_work_units(1);
                        me.node_id().0
                    })
                    .unwrap()
            })
            .collect();
        assert_eq!(s.node_count(DomainId(1)), 25);
        let mut ids: Vec<u32> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (100..124).collect::<Vec<_>>());
        assert_eq!(s.node_count(DomainId(1)), 1);
    }

    #[test]
    fn work_units_accumulate() {
        let s = sys();
        let n = s.initialize(DomainId(1), NodeId(0)).unwrap();
        n.add_work_units(3);
        n.add_work_units(4);
        assert_eq!(n.work_units(), 7);
    }
}
