//! File-backed shared mappings for cross-*process* remote memory.
//!
//! The in-process [`crate::rmem`] registry models remote memory between
//! nodes that share one address space.  A cluster of OS processes (the
//! romp-cluster worker pool) needs the real thing: a buffer both sides
//! can address without copying it through a socket.  POSIX spells that
//! `mmap(MAP_SHARED)` over a regular file — the worker writes results
//! into its mapping, the router reads them out of its own mapping of
//! the same file, and the bytes move through the page cache instead of
//! the wire.
//!
//! Bindings are declared directly against the C ABI, the same hermetic
//! idiom the serve reactor uses for epoll (no external crates — the
//! container has no registry access).

use std::fs::OpenOptions;
use std::os::fd::AsRawFd;
use std::path::Path;
use std::sync::atomic::{fence, Ordering};

// Raw POSIX surface (x86-64/aarch64 Linux ABI).
mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const MAP_SHARED: c_int = 0x01;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// One `MAP_SHARED` mapping of a regular file.
///
/// Concurrent readers and writers in *different processes* synchronise
/// through whatever channel tells them a region is ready (for the
/// cluster: the `Done` control message); the [`read`](FileMapping::read)
/// / [`write`](FileMapping::write) accessors fence around the copy so
/// that ordering holds on the weakly-ordered targets we model.
pub struct FileMapping {
    ptr: *mut u8,
    len: usize,
}

// The mapping is plain shared bytes; all access goes through the
// bounds-checked accessors and cross-thread hand-off is fenced there.
unsafe impl Send for FileMapping {}
unsafe impl Sync for FileMapping {}

impl FileMapping {
    /// Create (or truncate) `path`, size it to `len` bytes, and map it.
    pub fn create(path: &Path, len: usize) -> std::io::Result<FileMapping> {
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "zero-length mapping",
            ));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len as u64)?;
        Self::map(file.as_raw_fd(), len)
    }

    /// Map an existing file created by a peer process; the length comes
    /// from the file itself.
    pub fn open(path: &Path) -> std::io::Result<FileMapping> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "empty backing file",
            ));
        }
        Self::map(file.as_raw_fd(), len)
    }

    fn map(fd: i32, len: usize) -> std::io::Result<FileMapping> {
        // SAFETY: fd is a live regular file at least `len` bytes long
        // (set_len above / metadata check), so the kernel either maps it
        // or returns MAP_FAILED, which we turn into an error.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ | ffi::PROT_WRITE,
                ffi::MAP_SHARED,
                fd,
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(FileMapping {
            ptr: ptr as *mut u8,
            len,
        })
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never true — zero-length mappings are rejected at creation.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy `out.len()` bytes out of the mapping at `offset`.
    /// Returns `false` (copying nothing) when the range is out of bounds.
    pub fn read(&self, offset: usize, out: &mut [u8]) -> bool {
        let Some(end) = offset.checked_add(out.len()) else {
            return false;
        };
        if end > self.len {
            return false;
        }
        // Acquire: observe the peer's writes that preceded the message
        // announcing this region.
        fence(Ordering::Acquire);
        // SAFETY: range checked against the mapping above; src/dst don't
        // overlap (out is a private Rust slice).
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), out.as_mut_ptr(), out.len());
        }
        true
    }

    /// Copy `src` into the mapping at `offset`.
    /// Returns `false` (writing nothing) when the range is out of bounds.
    pub fn write(&self, offset: usize, src: &[u8]) -> bool {
        let Some(end) = offset.checked_add(src.len()) else {
            return false;
        };
        if end > self.len {
            return false;
        }
        // SAFETY: range checked against the mapping above.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
        // Release: make the bytes visible before any message announcing
        // them is sent.
        fence(Ordering::Release);
        true
    }
}

impl Drop for FileMapping {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            ffi::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

impl std::fmt::Debug for FileMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileMapping")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mrapi-filemap-{}-{}", std::process::id(), name))
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmp("roundtrip");
        let a = FileMapping::create(&path, 4096).unwrap();
        assert!(a.write(100, b"cross-process payload"));
        let b = FileMapping::open(&path).unwrap();
        assert_eq!(b.len(), 4096);
        let mut out = [0u8; 21];
        assert!(b.read(100, &mut out));
        assert_eq!(&out, b"cross-process payload");
        drop(a);
        drop(b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bounds_are_refused() {
        let path = tmp("bounds");
        let m = FileMapping::create(&path, 64).unwrap();
        let mut out = [0u8; 8];
        assert!(!m.read(60, &mut out));
        assert!(!m.write(usize::MAX, &out));
        assert!(m.read(56, &mut out));
        drop(m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_length_rejected() {
        let path = tmp("zero");
        assert!(FileMapping::create(&path, 0).is_err());
        std::fs::write(&path, b"").unwrap();
        assert!(FileMapping::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
