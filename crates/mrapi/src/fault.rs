//! Deterministic fault injection at the MRAPI boundaries.
//!
//! MRAPI's defining property is that every operation reports an
//! `mrapi_status_t` — a runtime built on it must survive any status the
//! spec allows at a call site.  This module makes those statuses
//! *producible on demand*: a [`FaultProbe`] installed on an
//! [`crate::MrapiSystem`] is consulted at every API boundary (node
//! init/create, mutex create/lock/unlock, shmem create/get) and may order
//! a spec-legal failure or a latency spike (a straggler) before the real
//! operation runs.
//!
//! The stock probe, [`FaultPlan`], is seeded by a single `u64` through
//! `mca-sync`'s SplitMix64: every decision is a pure function of
//! `(seed, site, per-site probe counter)`, so a schedule is reproducible
//! from the seed alone regardless of thread interleaving — the k-th probe
//! of a given site always gets the same answer.
//!
//! When no probe is installed the check is one relaxed atomic load
//! (see [`crate::MrapiSystem::set_fault_probe`]), so the facility is free
//! on production hot paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mca_platform::Clock;
use mca_sync::SmallRng;

use crate::status::MrapiStatus;

/// Number of instrumented boundaries.
pub const NUM_SITES: usize = 7;

/// An instrumented MRAPI boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `mrapi_initialize` (node registration).
    NodeInit,
    /// `mrapi_thread_create` (the paper's worker-node extension).
    NodeCreate,
    /// `mrapi_mutex_create`.
    MutexCreate,
    /// `mrapi_mutex_lock` / `mrapi_mutex_trylock`.
    MutexLock,
    /// `mrapi_mutex_unlock`.
    MutexUnlock,
    /// `mrapi_shmem_create`.
    ShmemCreate,
    /// `mrapi_shmem_get`.
    ShmemGet,
}

impl FaultSite {
    /// Every instrumented site, for iteration.
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::NodeInit,
        FaultSite::NodeCreate,
        FaultSite::MutexCreate,
        FaultSite::MutexLock,
        FaultSite::MutexUnlock,
        FaultSite::ShmemCreate,
        FaultSite::ShmemGet,
    ];

    /// Dense index of this site (for per-site tables).
    pub fn index(self) -> usize {
        match self {
            FaultSite::NodeInit => 0,
            FaultSite::NodeCreate => 1,
            FaultSite::MutexCreate => 2,
            FaultSite::MutexLock => 3,
            FaultSite::MutexUnlock => 4,
            FaultSite::ShmemCreate => 5,
            FaultSite::ShmemGet => 6,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NodeInit => "node_init",
            FaultSite::NodeCreate => "node_create",
            FaultSite::MutexCreate => "mutex_create",
            FaultSite::MutexLock => "mutex_lock",
            FaultSite::MutexUnlock => "mutex_unlock",
            FaultSite::ShmemCreate => "shmem_create",
            FaultSite::ShmemGet => "shmem_get",
        }
    }

    /// The statuses the MRAPI spec allows this boundary to report; random
    /// injection draws from this set only, so consumers never see a status
    /// the real call could not produce.
    pub fn legal_statuses(self) -> &'static [MrapiStatus] {
        match self {
            FaultSite::NodeInit => &[MrapiStatus::ErrNodeInitFailed],
            FaultSite::NodeCreate => &[MrapiStatus::ErrNodeInitFailed],
            FaultSite::MutexCreate => &[MrapiStatus::ErrMutexExists],
            FaultSite::MutexLock => &[MrapiStatus::Timeout, MrapiStatus::ErrMutexInvalid],
            FaultSite::MutexUnlock => &[MrapiStatus::ErrMutexKey, MrapiStatus::ErrMutexInvalid],
            FaultSite::ShmemCreate => &[MrapiStatus::ErrShmExists, MrapiStatus::ErrMemLimit],
            FaultSite::ShmemGet => &[MrapiStatus::ErrShmInvalid],
        }
    }
}

/// What a probe ordered for one boundary crossing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Fail the operation with this status instead of performing it.
    pub fail: Option<MrapiStatus>,
    /// Sleep this long first (straggler / latency-spike model); applies
    /// whether or not the operation also fails.
    pub delay: Option<Duration>,
}

impl FaultDecision {
    /// A decision that lets the operation through untouched.
    pub const PASS: FaultDecision = FaultDecision {
        fail: None,
        delay: None,
    };
}

/// A fault oracle the MRAPI boundaries consult.
///
/// Implementations must be cheap and lock-free where possible: `decide` is
/// called on lock/unlock hot paths whenever a probe is installed.
pub trait FaultProbe: Send + Sync {
    /// Rule on the next crossing of `site`.
    fn decide(&self, site: FaultSite) -> FaultDecision;
}

/// A passive listener notified at every MRAPI boundary crossing — the
/// observability counterpart of [`FaultProbe`], sharing its sites and its
/// one-relaxed-load disabled gate (see
/// [`crate::MrapiSystem::set_site_observer`]).
///
/// `observe` runs *before* the boundary's real operation (and before any
/// injected delay), on the caller's thread; implementations must be cheap
/// and must not call back into MRAPI.
pub trait SiteObserver: Send + Sync {
    /// `site` is being crossed; `injected` carries the status a fault
    /// probe ordered for this crossing, or `None` when the call proceeds
    /// normally.
    fn observe(&self, site: FaultSite, injected: Option<MrapiStatus>);
}

/// Per-site injection rates (probabilities in parts-per-million).
#[derive(Debug, Clone, Copy, Default)]
struct SiteSpec {
    fail_ppm: u32,
    delay_ppm: u32,
    delay: Duration,
}

/// Per-site distinct salt so sites draw from independent SplitMix64
/// streams.
const SITE_SALT: [u64; NUM_SITES] = [
    0x9A3C_F0E1_11D4_A3B7,
    0x5E21_88C9_73AD_06F1,
    0xD7B4_4A60_2F9E_5C83,
    0x31F8_BD15_E604_972D,
    0x8C5D_0E7A_B9F2_4461,
    0x46A9_63D8_50C7_EF19,
    0xEF12_7B36_984D_A0C5,
];

/// The seeded deterministic fault plan.
///
/// A plan is a set of per-site failure/latency rates plus (optionally) one
/// *persistent* fault: after its site has been probed `after` times, every
/// further probe of that site fails with a fixed status — modeling a
/// resource that dies mid-run and stays dead, the schedule shape that
/// drives MCA→native fallback.
pub struct FaultPlan {
    seed: u64,
    sites: [SiteSpec; NUM_SITES],
    persistent: Option<(FaultSite, MrapiStatus, u64)>,
    timed: Option<(FaultSite, MrapiStatus, u64, Clock)>,
    counters: [AtomicU64; NUM_SITES],
    injected: AtomicU64,
    delayed: AtomicU64,
}

impl FaultPlan {
    /// A quiet plan (no faults) carrying `seed`; configure with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: [SiteSpec::default(); NUM_SITES],
            persistent: None,
            timed: None,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// Derive a complete chaos schedule from a single seed: moderate
    /// random failure and latency rates at every site, and (for one seed
    /// in four) a persistent fault of one resource class.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(seed);
        for (i, spec) in plan.sites.iter_mut().enumerate() {
            let _ = i;
            // Up to 6% failures and 3% stragglers (of up to 2 ms) per site.
            spec.fail_ppm = rng.gen_range(0, 60_001) as u32;
            spec.delay_ppm = rng.gen_range(0, 30_001) as u32;
            spec.delay = Duration::from_micros(rng.gen_range(50, 2_000));
        }
        if rng.gen_range(0, 4) == 0 {
            // Persistent faults use only statuses the consumers classify as
            // non-transient, so recovery is fallback, not an endless retry.
            let choices: [(FaultSite, MrapiStatus); 4] = [
                (FaultSite::MutexLock, MrapiStatus::ErrMutexInvalid),
                (FaultSite::MutexUnlock, MrapiStatus::ErrMutexInvalid),
                (FaultSite::ShmemCreate, MrapiStatus::ErrMemLimit),
                (FaultSite::NodeCreate, MrapiStatus::ErrNodeInitFailed),
            ];
            let (site, status) = choices[rng.gen_index(0, choices.len())];
            let after = rng.gen_range(10, 200);
            plan.persistent = Some((site, status, after));
        }
        plan
    }

    /// Builder: fail `site` with probability `ppm`/1e6 (status drawn from
    /// [`FaultSite::legal_statuses`]).
    pub fn with_fail_rate(mut self, site: FaultSite, ppm: u32) -> Self {
        self.sites[site.index()].fail_ppm = ppm.min(1_000_000);
        self
    }

    /// Builder: delay `site` by `delay` with probability `ppm`/1e6.
    pub fn with_delay(mut self, site: FaultSite, ppm: u32, delay: Duration) -> Self {
        self.sites[site.index()].delay_ppm = ppm.min(1_000_000);
        self.sites[site.index()].delay = delay;
        self
    }

    /// Builder: after `after` probes of `site`, fail every further probe
    /// with `status` (a resource that dies and stays dead).
    pub fn with_persistent(mut self, site: FaultSite, status: MrapiStatus, after: u64) -> Self {
        self.persistent = Some((site, status, after));
        self
    }

    /// Builder: once `clock` reads at or past `at_ns`, fail every probe of
    /// `site` with `status` — a persistent fault armed at a *timestamp*
    /// rather than a probe count.
    ///
    /// With a virtual [`Clock`] this lets a deterministic simulation kill a
    /// resource at an exact instant in simulated time, independent of how
    /// many probes happen to precede it; with a real clock it models a
    /// wall-clock-scheduled outage.
    pub fn with_persistent_at(
        mut self,
        site: FaultSite,
        status: MrapiStatus,
        at_ns: u64,
        clock: Clock,
    ) -> Self {
        self.timed = Some((site, status, at_ns, clock));
        self
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total latency spikes injected so far.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// The persistent fault, if the plan has one.
    pub fn persistent_fault(&self) -> Option<(FaultSite, MrapiStatus, u64)> {
        self.persistent
    }

    /// Human-readable schedule description (for logs and EXPERIMENTS.md).
    pub fn describe(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for site in FaultSite::ALL {
            let s = &self.sites[site.index()];
            if s.fail_ppm > 0 || s.delay_ppm > 0 {
                parts.push(format!(
                    "{} fail={:.2}% delay={:.2}%x{}us",
                    site.label(),
                    s.fail_ppm as f64 / 10_000.0,
                    s.delay_ppm as f64 / 10_000.0,
                    s.delay.as_micros()
                ));
            }
        }
        if let Some((site, status, after)) = self.persistent {
            parts.push(format!(
                "persistent {}->{} after {}",
                site.label(),
                status.spec_name(),
                after
            ));
        }
        if let Some((site, status, at_ns, _)) = &self.timed {
            parts.push(format!(
                "timed {}->{} at t={}ns",
                site.label(),
                status.spec_name(),
                at_ns
            ));
        }
        format!("seed={:#x}: {}", self.seed, parts.join(", "))
    }

    /// The decision for the `n`-th probe of `site` — pure in
    /// `(seed, site, n)`, which is what makes schedules reproducible.
    fn decision_for(&self, site: FaultSite, n: u64) -> FaultDecision {
        if let Some((psite, status, after)) = self.persistent {
            if psite == site && n >= after {
                return FaultDecision {
                    fail: Some(status),
                    delay: None,
                };
            }
        }
        if let Some((tsite, status, at_ns, clock)) = &self.timed {
            if *tsite == site && clock.now_ns() >= *at_ns {
                return FaultDecision {
                    fail: Some(*status),
                    delay: None,
                };
            }
        }
        let spec = self.sites[site.index()];
        if spec.fail_ppm == 0 && spec.delay_ppm == 0 {
            return FaultDecision::PASS;
        }
        let stream = self.seed ^ SITE_SALT[site.index()] ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(stream);
        let mut d = FaultDecision::PASS;
        if rng.gen_range(0, 1_000_000) < spec.fail_ppm as u64 {
            let legal = site.legal_statuses();
            d.fail = Some(legal[rng.gen_index(0, legal.len())]);
        }
        if rng.gen_range(0, 1_000_000) < spec.delay_ppm as u64 {
            d.delay = Some(spec.delay);
        }
        d
    }
}

impl FaultProbe for FaultPlan {
    fn decide(&self, site: FaultSite) -> FaultDecision {
        let n = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        let d = self.decision_for(site, n);
        if d.fail.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        if d.delay.is_some() {
            self.delayed.fetch_add(1, Ordering::Relaxed);
        }
        d
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &format_args!("{:#x}", self.seed))
            .field("persistent", &self.persistent)
            .field("injected", &self.injected())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let plan = FaultPlan::new(42);
        for site in FaultSite::ALL {
            for _ in 0..1000 {
                assert_eq!(plan.decide(site), FaultDecision::PASS);
            }
        }
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.delayed(), 0);
    }

    #[test]
    fn schedules_are_reproducible_per_seed() {
        // Two plans from one seed hand out identical decision sequences
        // per site, even when the sites are probed in different orders.
        let a = FaultPlan::from_seed(0xDEAD_BEEF);
        let b = FaultPlan::from_seed(0xDEAD_BEEF);
        let mut a_hist = Vec::new();
        for site in FaultSite::ALL {
            for _ in 0..200 {
                a_hist.push((site, a.decide(site)));
            }
        }
        // Probe b site-interleaved instead of site-major.
        let mut b_hist = vec![FaultDecision::PASS; a_hist.len()];
        for k in 0..200 {
            for (s_idx, site) in FaultSite::ALL.iter().enumerate() {
                b_hist[s_idx * 200 + k] = b.decide(*site);
            }
        }
        for (i, (_, d)) in a_hist.iter().enumerate() {
            assert_eq!(*d, b_hist[i], "probe {i} diverged");
        }
    }

    #[test]
    fn seeds_produce_distinct_schedules() {
        let a = FaultPlan::from_seed(1);
        let b = FaultPlan::from_seed(2);
        let diverged =
            (0..500).any(|_| a.decide(FaultSite::MutexLock) != b.decide(FaultSite::MutexLock));
        assert!(diverged, "different seeds should differ somewhere");
    }

    #[test]
    fn injected_statuses_are_spec_legal() {
        let plan = FaultPlan::from_seed(7);
        for site in FaultSite::ALL {
            for _ in 0..2000 {
                if let Some(status) = plan.decide(site).fail {
                    assert!(
                        site.legal_statuses().contains(&status),
                        "{status:?} illegal at {site:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn persistent_fault_fires_forever_after_threshold() {
        let plan = FaultPlan::new(0).with_persistent(
            FaultSite::MutexLock,
            MrapiStatus::ErrMutexInvalid,
            5,
        );
        for i in 0..5 {
            assert_eq!(
                plan.decide(FaultSite::MutexLock).fail,
                None,
                "probe {i} before threshold"
            );
        }
        for _ in 0..100 {
            assert_eq!(
                plan.decide(FaultSite::MutexLock).fail,
                Some(MrapiStatus::ErrMutexInvalid)
            );
        }
        // Other sites are unaffected.
        assert_eq!(plan.decide(FaultSite::ShmemGet), FaultDecision::PASS);
    }

    #[test]
    fn timed_persistent_fault_arms_at_virtual_timestamp() {
        use mca_platform::VirtualClock;
        let vc = VirtualClock::new(0);
        let plan = FaultPlan::new(0).with_persistent_at(
            FaultSite::ShmemCreate,
            MrapiStatus::ErrMemLimit,
            1_000_000,
            vc.clock(),
        );
        for _ in 0..50 {
            assert_eq!(plan.decide(FaultSite::ShmemCreate), FaultDecision::PASS);
        }
        vc.advance_to(999_999);
        assert_eq!(plan.decide(FaultSite::ShmemCreate), FaultDecision::PASS);
        vc.advance_to(1_000_000);
        for _ in 0..50 {
            assert_eq!(
                plan.decide(FaultSite::ShmemCreate).fail,
                Some(MrapiStatus::ErrMemLimit)
            );
        }
        // Other sites stay clean.
        assert_eq!(plan.decide(FaultSite::MutexLock), FaultDecision::PASS);
    }

    #[test]
    fn builder_rates_fire_at_roughly_the_requested_rate() {
        let plan = FaultPlan::new(3).with_fail_rate(FaultSite::ShmemCreate, 500_000);
        let fired = (0..2000)
            .filter(|_| plan.decide(FaultSite::ShmemCreate).fail.is_some())
            .count();
        assert!(
            (600..1400).contains(&fired),
            "50% rate fired {fired}/2000 times"
        );
        assert_eq!(plan.injected(), fired as u64);
    }

    #[test]
    fn describe_names_the_persistent_fault() {
        let plan = FaultPlan::new(0x10).with_persistent(
            FaultSite::ShmemCreate,
            MrapiStatus::ErrMemLimit,
            9,
        );
        let d = plan.describe();
        assert!(d.contains("shmem_create"), "{d}");
        assert!(d.contains("MRAPI_ERR_MEM_LIMIT"), "{d}");
        assert!(d.contains("0x10"), "{d}");
    }
}
