//! # romp-cluster — a multi-process worker pool for `romp-serve`
//!
//! The paper's future-work section puts OpenMP-MCA on *closely
//! distributed* systems: compute spread over OS processes (or cores)
//! that talk through the MCA standards rather than shared data
//! structures.  This crate is that topology for the serving stack
//! (DESIGN.md §5.12): the front-end keeps its reactors, admission
//! queue, job table and watchdog, but the dispatcher — behind the
//! [`romp_serve::Dispatch`] seam — becomes a [`router::Router`] over N
//! **worker processes**, each a real `std::process` child running its
//! own `romp` runtime:
//!
//! ```text
//!  clients ──TCP──▶ reactors ─▶ queue ─▶ Router ──MCAPI wire──▶ worker 0 (romp runtime)
//!                                          │        (unix sockets)  worker 1
//!                                          │                        …
//!                                          └──▶ attach ◀── mrapi rmem (file-backed, zero-copy results)
//! ```
//!
//! The MCA crates supply the substance, not just the vocabulary:
//!
//! * **mca-mcapi** carries dispatch and control — each router↔worker
//!   link is an [`mca_mcapi::WireChan`] (genuine packet channels pumped
//!   over a Unix socket), so worker death surfaces as the channel's
//!   typed `MCAPI_ERR_CHAN_CLOSED`;
//! * **mca-mtapi** is the remote-dispatch vocabulary — inside each
//!   worker the job arrives as an MTAPI task on the worker's `Mtapi`
//!   runtime (`job 1` = "run a romp job spec");
//! * **mca-mrapi** provides the zero-copy result path — each worker
//!   creates a file-backed `rmem` segment (`rmem_create_file`), the
//!   router attaches it (`rmem_attach_file`), and result payloads come
//!   back through the shared mapping instead of the socket, in slots
//!   released after every fetch (the drain report asserts zero leaks).
//!
//! Supervision (the paper's node-failure story): workers heartbeat;
//! a killed worker is detected by heartbeat loss or channel error, its
//! in-flight jobs are retried on survivors (idempotent by construction
//! — a job's terminal state is recorded exactly once by the router),
//! and the worker is respawned.  An operator `Restart` request cycles
//! workers one at a time with zero lost jobs.

#![warn(missing_docs)]

pub mod proto;
pub mod router;
pub mod worker;

pub use router::{locate_worker_bin, ClusterConfig, Router};
pub use worker::{run_worker, WorkerConfig};
