//! The worker process: one MRAPI node running one `romp` runtime,
//! executing jobs the router dispatches over the MCAPI wire.
//!
//! Lifecycle: connect to the router's Unix socket ([`mca_mcapi::WireChan`]),
//! create the file-backed rmem result segment, send `Hello`, then serve
//! `Dispatch`/`Cancel`/`Release` messages until `Exit` (graceful — waits
//! for in-flight jobs, deletes the segment) or the channel dies (the
//! router is gone; exit immediately, the OS reclaims everything).
//!
//! Inside the process the dispatch vocabulary is MTAPI: the romp job is
//! action `JOB_RUN_SPEC` on the worker's [`Mtapi`] runtime, started as
//! one task per `Dispatch` and awaited by a completion thread that
//! writes the result detail into an rmem slot (or inline when no slot
//! fits) and answers `Done`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use mca_mcapi::WireChan;
use mca_mrapi::{DomainId, MrapiSystem, NodeId, RmemAttributes};
use mca_mtapi::{Mtapi, MtapiStatus, Task};
use mca_sync::Mutex;
use romp::{BackendKind, CancelToken, Config, Runtime};
use romp_serve::job::execute;
use romp_serve::lifecycle::terminal_for;
use romp_serve::protocol::{spec_from_bytes, spec_to_bytes};
use romp_serve::{JobOutcome, JobState};

use crate::proto::{ToRouter, ToWorker, SLOT_INLINE};

/// The MTAPI job id carrying "run a romp job spec".
pub const JOB_RUN_SPEC: u32 = 1;

/// The MRAPI domain all cluster workers initialize into.
pub const CLUSTER_DOMAIN: u32 = 7;

/// Worker construction parameters (parsed from `romp-worker` flags).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The router's Unix-socket path to connect to.
    pub socket: PathBuf,
    /// This worker's index in the pool (also its MRAPI node id).
    pub worker_id: u32,
    /// romp pool threads for job execution.
    pub threads: usize,
    /// Which romp backend to run jobs on.
    pub backend: BackendKind,
    /// Path of the file backing the rmem result segment.
    pub rmem_path: PathBuf,
    /// Result slots in the segment.
    pub slots: u32,
    /// Bytes per result slot.
    pub slot_bytes: u32,
    /// Heartbeat period, milliseconds.
    pub heartbeat_ms: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            socket: PathBuf::new(),
            worker_id: 0,
            threads: 2,
            backend: BackendKind::Native,
            rmem_path: PathBuf::new(),
            slots: 32,
            slot_bytes: 8192,
            heartbeat_ms: 25,
        }
    }
}

/// One finished task queued for the completion thread.
struct Finished {
    job: u64,
    task: Task,
    started: Instant,
}

/// Worker process body.  Returns the process exit code: `0` after a
/// graceful `Exit`, non-zero when the router vanished or setup failed.
pub fn run_worker(cfg: WorkerConfig) -> i32 {
    let chan = match WireChan::connect(&cfg.socket, Duration::from_secs(5)) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("romp-worker[{}]: connect failed: {e}", cfg.worker_id);
            return 2;
        }
    };

    // MRAPI node + the file-backed result segment the router attaches.
    let sys = MrapiSystem::new_t4240();
    let node = match sys.initialize(DomainId(CLUSTER_DOMAIN), NodeId(cfg.worker_id)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("romp-worker[{}]: mrapi init failed: {e}", cfg.worker_id);
            return 2;
        }
    };
    let seg_bytes = (cfg.slots as usize) * (cfg.slot_bytes as usize);
    let rmem = match node.rmem_create_file(
        cfg.worker_id,
        &cfg.rmem_path,
        seg_bytes.max(1),
        &RmemAttributes::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("romp-worker[{}]: rmem create failed: {e}", cfg.worker_id);
            return 2;
        }
    };

    // The romp runtime every job executes on (this process's pool).
    let rt = match Runtime::with_config(
        Config::from_env()
            .with_backend(cfg.backend)
            .with_num_threads(cfg.threads.max(1)),
    ) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("romp-worker[{}]: runtime failed: {e}", cfg.worker_id);
            return 2;
        }
    };

    // MTAPI: the remote-dispatch vocabulary.  One action — "run a romp
    // job spec" — executed by the MTAPI pool (1 worker: jobs already
    // parallelize internally through the romp pool; a second MTAPI
    // thread would just contend for it).
    let mtapi = match Mtapi::initialize(CLUSTER_DOMAIN, cfg.worker_id, 1) {
        Ok(m) => Arc::new(m),
        Err(e) => {
            eprintln!("romp-worker[{}]: mtapi init failed: {e}", cfg.worker_id);
            return 2;
        }
    };
    let tokens: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    let action_rt = rt.clone();
    let action_tokens = Arc::clone(&tokens);
    mtapi
        .create_action(JOB_RUN_SPEC, move |input| {
            run_spec_action(&action_rt, &action_tokens, input)
        })
        .expect("fresh action table");
    let job_handle = mtapi.job(JOB_RUN_SPEC).expect("action registered");

    // Free result slots (indices into the rmem segment).
    let free_slots: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new((0..cfg.slots).rev().collect()));
    let inflight = Arc::new(AtomicU32::new(0));

    // Hello must be the first packet on the wire (the router's accept
    // path waits for it), so send it before the heartbeat starts.
    let hello = ToRouter::Hello {
        worker: cfg.worker_id,
        pid: std::process::id(),
        rmem_id: cfg.worker_id,
        slots: cfg.slots,
        slot_bytes: cfg.slot_bytes,
    };
    if chan.send(&hello.encode()).is_err() {
        return 3;
    }

    // Heartbeat thread: liveness beacon; a send error means the router
    // is gone — nothing left to serve.
    {
        let chan = Arc::clone(&chan);
        let inflight = Arc::clone(&inflight);
        let period = Duration::from_millis(cfg.heartbeat_ms.max(1));
        let mtapi = Arc::clone(&mtapi);
        std::thread::Builder::new()
            .name("worker-heartbeat".into())
            .spawn(move || {
                let mut seq = 0u64;
                loop {
                    seq += 1;
                    let msg = ToRouter::Heartbeat {
                        seq,
                        inflight: inflight.load(Ordering::Relaxed),
                        executed: mtapi.tasks_executed() as u64,
                    };
                    if chan.send(&msg.encode()).is_err() {
                        std::process::exit(3);
                    }
                    std::thread::sleep(period);
                }
            })
            .expect("spawn heartbeat");
    }

    // Completion thread: awaits finished MTAPI tasks in dispatch order,
    // moves the detail into an rmem slot (zero-copy fetch) or inline,
    // answers Done.
    let (done_tx, done_rx) = mpsc::channel::<Finished>();
    let completion = {
        let chan = Arc::clone(&chan);
        let tokens = Arc::clone(&tokens);
        let free_slots = Arc::clone(&free_slots);
        let inflight = Arc::clone(&inflight);
        let slot_bytes = cfg.slot_bytes;
        let rmem = node.rmem_get(cfg.worker_id).expect("own segment");
        std::thread::Builder::new()
            .name("worker-completion".into())
            .spawn(move || {
                while let Ok(fin) = done_rx.recv() {
                    let wall_us = fin.started.elapsed().as_micros() as u64;
                    let (state, ok, detail) = match fin.task.wait(None) {
                        Ok(bytes) => decode_outcome(&bytes),
                        Err(e) if e.0 == MtapiStatus::ErrTaskCancelled => (
                            JobState::Cancelled,
                            false,
                            b"cancelled before start".to_vec(),
                        ),
                        Err(e) => (JobState::Failed, false, format!("mtapi: {e}").into_bytes()),
                    };
                    tokens.lock().remove(&fin.job);
                    inflight.fetch_sub(1, Ordering::Relaxed);
                    // Prefer the shared-memory path; fall back inline
                    // when the detail outgrows a slot or none is free.
                    let mut slot = SLOT_INLINE;
                    if detail.len() <= slot_bytes as usize {
                        if let Some(s) = free_slots.lock().pop() {
                            if rmem
                                .write((s as usize) * (slot_bytes as usize), &detail)
                                .is_ok()
                            {
                                slot = s;
                            } else {
                                free_slots.lock().push(s);
                            }
                        }
                    }
                    let msg = ToRouter::Done {
                        job: fin.job,
                        state,
                        ok,
                        wall_us,
                        slot,
                        len: detail.len() as u32,
                        inline: if slot == SLOT_INLINE {
                            detail
                        } else {
                            Vec::new()
                        },
                    };
                    if chan.send(&msg.encode()).is_err() {
                        std::process::exit(3);
                    }
                }
            })
            .expect("spawn completion")
    };

    // Main loop: control messages until Exit or channel death.
    loop {
        let pkt = match chan.recv() {
            Ok(p) => p,
            // Router died or closed without Exit: nothing to flush that
            // anyone will read.  The OS reclaims the mapping; the file
            // is the router's to clean up.
            Err(_) => return 3,
        };
        match ToWorker::decode(&pkt) {
            Ok(ToWorker::Dispatch { job, spec }) => {
                let token = CancelToken::new();
                tokens.lock().insert(job, token.clone());
                inflight.fetch_add(1, Ordering::Relaxed);
                let mut input = Vec::with_capacity(16);
                input.extend_from_slice(&job.to_be_bytes());
                input.extend_from_slice(&spec_to_bytes(&spec));
                match job_handle.start(input) {
                    Ok(task) => {
                        let _ = done_tx.send(Finished {
                            job,
                            task,
                            started: Instant::now(),
                        });
                    }
                    Err(e) => {
                        tokens.lock().remove(&job);
                        inflight.fetch_sub(1, Ordering::Relaxed);
                        let msg = ToRouter::Done {
                            job,
                            state: JobState::Failed,
                            ok: false,
                            wall_us: 0,
                            slot: SLOT_INLINE,
                            len: 0,
                            inline: format!("task start: {e}").into_bytes(),
                        };
                        if chan.send(&msg.encode()).is_err() {
                            return 3;
                        }
                    }
                }
            }
            Ok(ToWorker::Cancel { job, deadline }) => {
                if let Some(token) = tokens.lock().get(&job) {
                    if deadline {
                        token.cancel_deadline();
                    } else {
                        token.cancel();
                    }
                }
            }
            Ok(ToWorker::Release { slot }) => {
                if slot < cfg.slots {
                    let mut free = free_slots.lock();
                    if !free.contains(&slot) {
                        free.push(slot);
                    }
                }
            }
            Ok(ToWorker::Exit) => break,
            // A malformed control packet is a router bug; refuse loudly
            // rather than guessing.
            Err(e) => {
                eprintln!("romp-worker[{}]: bad control packet: {e}", cfg.worker_id);
                return 4;
            }
        }
    }

    // Graceful exit: let in-flight jobs finish (the completion thread
    // drains them through Done), then tear down.
    while inflight.load(Ordering::Relaxed) > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(done_tx);
    let _ = completion.join();
    let _ = rmem.delete();
    let _ = std::fs::remove_file(&cfg.rmem_path);
    0
}

/// The MTAPI action body: decode `[job u64][spec]`, arm the runtime with
/// the job's token, execute under `catch_unwind`, encode the outcome.
fn run_spec_action(
    rt: &Runtime,
    tokens: &Mutex<HashMap<u64, CancelToken>>,
    input: &[u8],
) -> Vec<u8> {
    let Some(job_bytes) = input.get(..8) else {
        return encode_outcome(
            JobState::Failed,
            &JobOutcome {
                ok: false,
                wall_us: 0,
                detail: "truncated dispatch input".into(),
            },
        );
    };
    let job = u64::from_be_bytes(job_bytes.try_into().unwrap());
    let spec = match spec_from_bytes(&input[8..]) {
        Ok(s) => s,
        Err(e) => {
            return encode_outcome(
                JobState::Failed,
                &JobOutcome {
                    ok: false,
                    wall_us: 0,
                    detail: format!("bad spec: {e}"),
                },
            )
        }
    };
    let token = tokens.lock().get(&job).cloned().unwrap_or_default();
    // Cancelled while queued behind other tasks: skip execution.
    if let Some(reason) = token.reason() {
        let (state, outcome) = terminal_for(
            Some(reason),
            JobOutcome {
                ok: false,
                wall_us: 0,
                detail: "cancelled while queued on worker".into(),
            },
        );
        return encode_outcome(state, &outcome);
    }
    rt.set_cancel_token(Some(token.clone()));
    let started = Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(rt, &spec)));
    rt.set_cancel_token(None);
    let wall_us = started.elapsed().as_micros() as u64;
    let (state, outcome) = match result {
        Err(payload) => {
            rt.quiesce();
            (
                JobState::Failed,
                JobOutcome {
                    ok: false,
                    wall_us,
                    detail: format!("panicked: {}", panic_message(payload.as_ref())),
                },
            )
        }
        Ok(out) => terminal_for(token.reason(), out),
    };
    encode_outcome(state, &outcome)
}

/// `[state u8][ok u8][wall_us u64][detail…]` — the action's output bytes.
fn encode_outcome(state: JobState, outcome: &JobOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + outcome.detail.len());
    out.push(state.to_u8());
    out.push(u8::from(outcome.ok));
    out.extend_from_slice(&outcome.wall_us.to_be_bytes());
    out.extend_from_slice(outcome.detail.as_bytes());
    out
}

/// Inverse of [`encode_outcome`]; lossy on hostile bytes (a worker's own
/// action produced them, so malformation means a worker bug).
fn decode_outcome(bytes: &[u8]) -> (JobState, bool, Vec<u8>) {
    if bytes.len() < 10 {
        return (JobState::Failed, false, b"short outcome".to_vec());
    }
    let state = JobState::from_u8(bytes[0]).unwrap_or(JobState::Failed);
    (state, bytes[1] != 0, bytes[10..].to_vec())
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_codec_roundtrips() {
        let out = JobOutcome {
            ok: true,
            wall_us: 12345,
            detail: "verified: sum matches".into(),
        };
        let enc = encode_outcome(JobState::Done, &out);
        let (state, ok, detail) = decode_outcome(&enc);
        assert_eq!(state, JobState::Done);
        assert!(ok);
        assert_eq!(detail, out.detail.as_bytes());
    }

    #[test]
    fn short_outcome_fails_closed() {
        let (state, ok, _) = decode_outcome(&[1, 2, 3]);
        assert_eq!(state, JobState::Failed);
        assert!(!ok);
    }
}
