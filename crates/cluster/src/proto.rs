//! The router↔worker control protocol.
//!
//! One message per MCAPI wire packet (the [`mca_mcapi::WireChan`]
//! preserves packet boundaries, so there is no length prefix here);
//! `body[0]` is the opcode, integers are big-endian — the same framing
//! discipline as the client protocol in [`romp_serve::protocol`], whose
//! typed [`ProtoError`] this module reuses.
//!
//! Job payloads ride as [`romp_serve::protocol::spec_to_bytes`] specs;
//! result details ride either inline (small / rmem exhausted) or as a
//! `(slot, len)` reference into the worker's file-backed rmem segment
//! (the zero-copy path).

use romp_serve::protocol::{spec_from_bytes, spec_to_bytes, ProtoError};
use romp_serve::{JobSpec, JobState};

/// `Done.slot` value meaning "the detail is inline in this message, not
/// in an rmem slot".
pub const SLOT_INLINE: u32 = u32::MAX;

const OP_DISPATCH: u8 = 0x01;
const OP_CANCEL: u8 = 0x02;
const OP_RELEASE: u8 = 0x03;
const OP_EXIT: u8 = 0x04;

const OP_HELLO: u8 = 0x81;
const OP_HEARTBEAT: u8 = 0x82;
const OP_DONE: u8 = 0x83;

/// Router → worker messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToWorker {
    /// Run this job (the MTAPI task start on the worker side).
    Dispatch {
        /// Server-assigned job id (the router's job-table id).
        job: u64,
        /// What to run.
        spec: JobSpec,
    },
    /// Cancel a dispatched job (fire its token on the worker).
    Cancel {
        /// The job to cancel.
        job: u64,
        /// True when the cancel is a fired deadline (`TimedOut`
        /// terminal), false for an explicit request (`Cancelled`).
        deadline: bool,
    },
    /// The router fetched the result out of rmem; the worker may reuse
    /// the slot.
    Release {
        /// Slot index being returned to the worker's free list.
        slot: u32,
    },
    /// Graceful exit: finish in-flight jobs, delete the rmem segment,
    /// terminate cleanly (rolling restarts and the final drain).
    Exit,
}

/// Worker → router messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToRouter {
    /// First message after connect: the worker is up.
    Hello {
        /// Worker index (echoed from the command line).
        worker: u32,
        /// The worker's OS pid (the chaos test's SIGKILL target).
        pid: u32,
        /// Id of the file-backed rmem segment the worker created.
        rmem_id: u32,
        /// Number of result slots in the segment.
        slots: u32,
        /// Bytes per slot.
        slot_bytes: u32,
    },
    /// Periodic liveness beacon.
    Heartbeat {
        /// Monotonic per-worker sequence number.
        seq: u64,
        /// Jobs currently executing or queued on the worker.
        inflight: u32,
        /// MTAPI tasks executed since start (progress signal).
        executed: u64,
    },
    /// A dispatched job reached a terminal state on the worker.
    Done {
        /// The job.
        job: u64,
        /// Terminal [`JobState`] the worker observed (the router
        /// reconciles against its own token before recording).
        state: JobState,
        /// Whether the job's verification passed.
        ok: bool,
        /// Execution wall time on the worker, microseconds.
        wall_us: u64,
        /// Result-detail location: an rmem slot index, or
        /// [`SLOT_INLINE`].
        slot: u32,
        /// Detail length in bytes (rmem path); ignored inline.
        len: u32,
        /// The detail itself when `slot == SLOT_INLINE`, else empty.
        inline: Vec<u8>,
    },
}

fn u64_at(b: &[u8], off: usize, op: u8) -> Result<u64, ProtoError> {
    b.get(off..off + 8)
        .map(|s| u64::from_be_bytes(s.try_into().unwrap()))
        .ok_or(ProtoError::Truncated { opcode: op })
}

fn u32_at(b: &[u8], off: usize, op: u8) -> Result<u32, ProtoError> {
    b.get(off..off + 4)
        .map(|s| u32::from_be_bytes(s.try_into().unwrap()))
        .ok_or(ProtoError::Truncated { opcode: op })
}

fn u8_at(b: &[u8], off: usize, op: u8) -> Result<u8, ProtoError> {
    b.get(off)
        .copied()
        .ok_or(ProtoError::Truncated { opcode: op })
}

fn exact(b: &[u8], len: usize, op: u8) -> Result<(), ProtoError> {
    match b.len().cmp(&len) {
        std::cmp::Ordering::Less => Err(ProtoError::Truncated { opcode: op }),
        std::cmp::Ordering::Equal => Ok(()),
        std::cmp::Ordering::Greater => Err(ProtoError::TrailingBytes(op)),
    }
}

impl ToWorker {
    /// Encode as one wire packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            ToWorker::Dispatch { job, spec } => {
                out.push(OP_DISPATCH);
                out.extend_from_slice(&job.to_be_bytes());
                out.extend_from_slice(&spec_to_bytes(spec));
            }
            ToWorker::Cancel { job, deadline } => {
                out.push(OP_CANCEL);
                out.extend_from_slice(&job.to_be_bytes());
                out.push(u8::from(*deadline));
            }
            ToWorker::Release { slot } => {
                out.push(OP_RELEASE);
                out.extend_from_slice(&slot.to_be_bytes());
            }
            ToWorker::Exit => out.push(OP_EXIT),
        }
        out
    }

    /// Decode one wire packet; never panics on hostile bytes.
    pub fn decode(body: &[u8]) -> Result<ToWorker, ProtoError> {
        let &op = body.first().ok_or(ProtoError::EmptyFrame)?;
        match op {
            OP_DISPATCH => Ok(ToWorker::Dispatch {
                job: u64_at(body, 1, op)?,
                spec: spec_from_bytes(body.get(9..).unwrap_or(&[]))?,
            }),
            OP_CANCEL => {
                exact(body, 10, op)?;
                Ok(ToWorker::Cancel {
                    job: u64_at(body, 1, op)?,
                    deadline: u8_at(body, 9, op)? != 0,
                })
            }
            OP_RELEASE => {
                exact(body, 5, op)?;
                Ok(ToWorker::Release {
                    slot: u32_at(body, 1, op)?,
                })
            }
            OP_EXIT => {
                exact(body, 1, op)?;
                Ok(ToWorker::Exit)
            }
            other => Err(ProtoError::UnknownOpcode(other)),
        }
    }
}

impl ToRouter {
    /// Encode as one wire packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            ToRouter::Hello {
                worker,
                pid,
                rmem_id,
                slots,
                slot_bytes,
            } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&worker.to_be_bytes());
                out.extend_from_slice(&pid.to_be_bytes());
                out.extend_from_slice(&rmem_id.to_be_bytes());
                out.extend_from_slice(&slots.to_be_bytes());
                out.extend_from_slice(&slot_bytes.to_be_bytes());
            }
            ToRouter::Heartbeat {
                seq,
                inflight,
                executed,
            } => {
                out.push(OP_HEARTBEAT);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&inflight.to_be_bytes());
                out.extend_from_slice(&executed.to_be_bytes());
            }
            ToRouter::Done {
                job,
                state,
                ok,
                wall_us,
                slot,
                len,
                inline,
            } => {
                out.push(OP_DONE);
                out.extend_from_slice(&job.to_be_bytes());
                out.push(state.to_u8());
                out.push(u8::from(*ok));
                out.extend_from_slice(&wall_us.to_be_bytes());
                out.extend_from_slice(&slot.to_be_bytes());
                out.extend_from_slice(&len.to_be_bytes());
                out.extend_from_slice(inline);
            }
        }
        out
    }

    /// Decode one wire packet; never panics on hostile bytes.
    pub fn decode(body: &[u8]) -> Result<ToRouter, ProtoError> {
        let &op = body.first().ok_or(ProtoError::EmptyFrame)?;
        match op {
            OP_HELLO => {
                exact(body, 21, op)?;
                Ok(ToRouter::Hello {
                    worker: u32_at(body, 1, op)?,
                    pid: u32_at(body, 5, op)?,
                    rmem_id: u32_at(body, 9, op)?,
                    slots: u32_at(body, 13, op)?,
                    slot_bytes: u32_at(body, 17, op)?,
                })
            }
            OP_HEARTBEAT => {
                exact(body, 21, op)?;
                Ok(ToRouter::Heartbeat {
                    seq: u64_at(body, 1, op)?,
                    inflight: u32_at(body, 9, op)?,
                    executed: u64_at(body, 13, op)?,
                })
            }
            OP_DONE => {
                if body.len() < 27 {
                    return Err(ProtoError::Truncated { opcode: op });
                }
                Ok(ToRouter::Done {
                    job: u64_at(body, 1, op)?,
                    state: JobState::from_u8(u8_at(body, 9, op)?)
                        .ok_or(ProtoError::BadPayload("unknown job state"))?,
                    ok: u8_at(body, 10, op)? != 0,
                    wall_us: u64_at(body, 11, op)?,
                    slot: u32_at(body, 19, op)?,
                    len: u32_at(body, 23, op)?,
                    inline: body[27..].to_vec(),
                })
            }
            other => Err(ProtoError::UnknownOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_sync::SmallRng;
    use romp_serve::DiagSpec;

    fn arb_spec(rng: &mut SmallRng) -> JobSpec {
        match rng.next_u64() % 2 {
            0 => JobSpec::Epcc {
                construct: romp_epcc::Construct::Barrier,
                threads: rng.gen_range(1, 9) as u8,
                inner_reps: rng.gen_range(1, 100) as u16,
            },
            _ => JobSpec::Diag {
                diag: DiagSpec::Spin {
                    ms: rng.next_u64() as u32,
                },
                threads: rng.gen_range(1, 9) as u8,
            },
        }
    }

    #[test]
    fn to_worker_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0xC1);
        for _ in 0..500 {
            let msg = match rng.next_u64() % 4 {
                0 => ToWorker::Dispatch {
                    job: rng.next_u64(),
                    spec: arb_spec(&mut rng),
                },
                1 => ToWorker::Cancel {
                    job: rng.next_u64(),
                    deadline: rng.next_u64().is_multiple_of(2),
                },
                2 => ToWorker::Release {
                    slot: rng.next_u64() as u32,
                },
                _ => ToWorker::Exit,
            };
            assert_eq!(ToWorker::decode(&msg.encode()), Ok(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn to_router_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0xC2);
        for _ in 0..500 {
            let msg = match rng.next_u64() % 3 {
                0 => ToRouter::Hello {
                    worker: rng.next_u64() as u32,
                    pid: rng.next_u64() as u32,
                    rmem_id: rng.next_u64() as u32,
                    slots: rng.next_u64() as u32,
                    slot_bytes: rng.next_u64() as u32,
                },
                1 => ToRouter::Heartbeat {
                    seq: rng.next_u64(),
                    inflight: rng.next_u64() as u32,
                    executed: rng.next_u64(),
                },
                _ => ToRouter::Done {
                    job: rng.next_u64(),
                    state: JobState::from_u8(2 + (rng.next_u64() % 2) as u8).unwrap(),
                    ok: rng.next_u64().is_multiple_of(2),
                    wall_us: rng.next_u64(),
                    slot: if rng.next_u64().is_multiple_of(2) {
                        SLOT_INLINE
                    } else {
                        rng.next_u64() as u32 % 64
                    },
                    len: rng.next_u64() as u32,
                    inline: (0..rng.gen_index(0, 40))
                        .map(|_| rng.next_u64() as u8)
                        .collect(),
                },
            };
            assert_eq!(ToRouter::decode(&msg.encode()), Ok(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn hostile_bytes_yield_typed_errors() {
        let mut rng = SmallRng::seed_from_u64(0xC3);
        for _ in 0..5_000 {
            let len = rng.gen_index(0, 40);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = ToWorker::decode(&bytes);
            let _ = ToRouter::decode(&bytes);
        }
    }

    #[test]
    fn trailing_bytes_rejected_on_fixed_messages() {
        let mut enc = ToWorker::Exit.encode();
        enc.push(0xAA);
        assert!(matches!(
            ToWorker::decode(&enc),
            Err(ProtoError::TrailingBytes(_))
        ));
    }
}
