//! The `romp-serve` server binary (single-process and cluster modes).
//!
//! ```text
//! romp-serve [--addr 127.0.0.1:7171] [--backend native|mca]
//!            [--queue-cap N] [--max-job-threads N] [--threads N]
//!            [--deadline-ms N] [--grace-ms N] [--reactors N]
//!            [--shards N] [--allow-diag]
//!            [--shed] [--lane-weights HI,NORM,BATCH] [--retry-floor-ms N]
//!            [--workers N] [--worker-threads N] [--worker-bin PATH]
//! ```
//!
//! Binds, prints `romp-serve listening on <addr>`, and serves until a
//! client sends `shutdown`; then drains every accepted job, quiesces the
//! pool, and prints the drain report as JSON on stdout.  Exits non-zero
//! if the drain dropped anything (it cannot, by construction — the exit
//! code is the CI assertion).
//!
//! With `--workers N` the jobs run in N supervised worker **processes**
//! (`romp-worker`) behind a [`romp_cluster::Router`]: dispatch over
//! MCAPI wire channels, results fetched zero-copy from each worker's
//! file-backed MRAPI rmem segment, heartbeat-supervised restarts, and
//! operator rolling restarts via the client `restart` request.

use std::sync::Arc;

use romp::{BackendKind, Config, Runtime};
use romp_cluster::{ClusterConfig, Router};
use romp_serve::{JobLimits, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: romp-serve [--addr HOST:PORT] [--backend native|mca] \
         [--queue-cap N] [--max-job-threads N] [--threads N] \
         [--deadline-ms N] [--grace-ms N] [--reactors N] [--shards N] \
         [--allow-diag] [--shed] [--lane-weights HI,NORM,BATCH] \
         [--retry-floor-ms N] [--workers N] [--worker-threads N] \
         [--worker-bin PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut backend = BackendKind::Native;
    let mut queue_cap = 64usize;
    let mut max_job_threads = 16u8;
    let mut num_threads: Option<usize> = None;
    let mut default_deadline_ms = 0u32;
    let mut escalation_grace_ms: Option<u64> = None;
    let mut reactors = 1usize;
    let mut shards: Option<usize> = None;
    let mut allow_diag = false;
    let mut shed = false;
    let mut lane_weights: Option<[u32; romp_serve::LANES]> = None;
    let mut retry_floor_ms: Option<u32> = None;
    let mut workers = 0usize;
    let mut worker_threads: Option<usize> = None;
    let mut worker_bin: Option<std::path::PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |j: usize| args.get(j).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                addr = need(i + 1);
                i += 2;
            }
            "--backend" => {
                backend = BackendKind::parse(&need(i + 1)).unwrap_or_else(|| usage());
                i += 2;
            }
            "--queue-cap" => {
                queue_cap = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--max-job-threads" => {
                max_job_threads = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--threads" => {
                num_threads = Some(need(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--deadline-ms" => {
                default_deadline_ms = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--grace-ms" => {
                escalation_grace_ms = Some(need(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--reactors" => {
                reactors = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--shards" => {
                shards = Some(need(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--allow-diag" => {
                allow_diag = true;
                i += 1;
            }
            "--shed" => {
                shed = true;
                i += 1;
            }
            "--lane-weights" => {
                let raw = need(i + 1);
                let parts: Vec<u32> = raw
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parts.len() != romp_serve::LANES {
                    usage();
                }
                let mut w = [0u32; romp_serve::LANES];
                w.copy_from_slice(&parts);
                lane_weights = Some(w);
                i += 2;
            }
            "--retry-floor-ms" => {
                retry_floor_ms = Some(need(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--workers" => {
                workers = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--worker-threads" => {
                worker_threads = Some(need(i + 1).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--worker-bin" => {
                worker_bin = Some(need(i + 1).into());
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut cfg = Config::from_env().with_backend(backend);
    if let Some(n) = num_threads {
        cfg = cfg.with_num_threads(n);
    }
    if let Some(s) = shards {
        cfg = cfg.with_shards(s);
    }
    let rt = match Runtime::with_config(cfg) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("romp-serve: runtime construction failed: {e}");
            std::process::exit(1);
        }
    };

    let mut serve_cfg = ServeConfig {
        queue_cap,
        limits: JobLimits {
            max_threads: max_job_threads,
            allow_diag,
            ..JobLimits::default()
        },
        default_deadline_ms,
        reactors,
        shed,
        ..ServeConfig::default()
    };
    if let Some(grace) = escalation_grace_ms {
        serve_cfg.escalation_grace_ms = grace;
    }
    if let Some(w) = lane_weights {
        serve_cfg.lane_weights = w;
    }
    if let Some(floor) = retry_floor_ms {
        serve_cfg.retry_floor_ms = floor;
    }

    let start = if workers > 0 {
        let router = match Router::new(ClusterConfig {
            workers,
            worker_bin,
            worker_threads: worker_threads.unwrap_or(2),
            backend,
            ..ClusterConfig::default()
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("romp-serve: cluster setup failed: {e}");
                std::process::exit(1);
            }
        };
        Server::start_with_dispatch(
            &addr,
            serve_cfg,
            rt,
            router as Arc<dyn romp_serve::Dispatch>,
        )
    } else {
        Server::start(&addr, serve_cfg, rt)
    };
    let handle = match start {
        Ok(h) => h,
        Err(e) => {
            eprintln!("romp-serve: bind {addr} failed: {e}");
            std::process::exit(1);
        }
    };
    // The readiness line scripts wait for (flushed by println's newline).
    println!("romp-serve listening on {}", handle.addr());

    let report = handle.join();
    println!("{}", report.to_json());
    if report.dropped != 0 {
        eprintln!("romp-serve: drain dropped {} accepted jobs", report.dropped);
        std::process::exit(1);
    }
    if report.rmem_leaked != 0 {
        eprintln!(
            "romp-serve: {} rmem result slots leaked at drain",
            report.rmem_leaked
        );
        std::process::exit(1);
    }
}
