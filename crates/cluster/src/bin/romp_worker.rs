//! The `romp-worker` binary: one cluster worker process.  Spawned and
//! supervised by the router inside `romp-serve --workers N`; not meant
//! to be launched by hand (it exits immediately without a router socket
//! to connect to).
//!
//! ```text
//! romp-worker --socket PATH --worker-id N --rmem-path PATH
//!             [--threads N] [--backend native|mca]
//!             [--slots N] [--slot-bytes N] [--heartbeat-ms N]
//! ```

use romp::BackendKind;
use romp_cluster::{run_worker, WorkerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: romp-worker --socket PATH --worker-id N --rmem-path PATH \
         [--threads N] [--backend native|mca] [--slots N] \
         [--slot-bytes N] [--heartbeat-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = WorkerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |j: usize| args.get(j).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--socket" => {
                cfg.socket = need(i + 1).into();
                i += 2;
            }
            "--worker-id" => {
                cfg.worker_id = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--threads" => {
                cfg.threads = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--backend" => {
                cfg.backend = BackendKind::parse(&need(i + 1)).unwrap_or_else(|| usage());
                i += 2;
            }
            "--rmem-path" => {
                cfg.rmem_path = need(i + 1).into();
                i += 2;
            }
            "--slots" => {
                cfg.slots = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--slot-bytes" => {
                cfg.slot_bytes = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--heartbeat-ms" => {
                cfg.heartbeat_ms = need(i + 1).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if cfg.socket.as_os_str().is_empty() || cfg.rmem_path.as_os_str().is_empty() {
        usage();
    }
    std::process::exit(run_worker(cfg));
}
