//! The router: a [`romp_serve::Dispatch`] implementation that farms
//! jobs out to N supervised worker **processes** over MCAPI wire
//! channels, fetching results through each worker's file-backed MRAPI
//! rmem segment.
//!
//! Supervision model (DESIGN.md §5.12):
//!
//! * every worker heartbeats on its wire channel; the supervisor
//!   declares a worker dead after `heartbeat_misses` silent periods or
//!   on the channel's typed `MCAPI_ERR_CHAN_CLOSED`;
//! * a dead worker's in-flight jobs are **retried** on survivors (at
//!   most `max_retries` times; jobs whose cancel token already fired
//!   are completed terminal instead — the job table records exactly one
//!   terminal state per job, so retries are idempotent from the
//!   client's point of view);
//! * the dead worker is respawned with a bumped generation; stale
//!   receive threads and late packets from the old incarnation are
//!   ignored by generation check;
//! * an operator `Restart` request cycles workers one at a time:
//!   drain (stop targeting, wait for its in-flight jobs), graceful
//!   `Exit`, respawn — zero lost jobs by construction.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use mca_mcapi::{McapiStatus, WireChan, WireListener};
use mca_mrapi::{DomainId, MrapiSystem, Node, NodeId, RmemAttributes, RmemHandle};
use mca_sync::{Condvar, Mutex};
use romp::BackendKind;
use romp_serve::lifecycle::terminal_for;
use romp_serve::{Dispatch, DispatchCtx, JobOutcome, JobState, QueuedJob};
use romp_trace::{json_escape, Counter, Gauge};

use crate::proto::{ToRouter, ToWorker, SLOT_INLINE};
use crate::worker::CLUSTER_DOMAIN;

/// How the pool is built and supervised.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Path to the `romp-worker` binary; `None` = locate next to the
    /// current executable (or `$ROMP_WORKER_BIN`).
    pub worker_bin: Option<PathBuf>,
    /// romp pool threads inside each worker.
    pub worker_threads: usize,
    /// Backend each worker runs jobs on.
    pub backend: BackendKind,
    /// Worker heartbeat period, milliseconds.
    pub heartbeat_ms: u64,
    /// Silent heartbeat periods before a worker is declared dead.
    pub heartbeat_misses: u64,
    /// Dispatch window per worker (jobs in flight before the router
    /// holds further dispatches back).
    pub inflight_per_worker: usize,
    /// Times a job orphaned by a worker death is retried before it is
    /// failed.
    pub max_retries: u32,
    /// Result slots per worker rmem segment.
    pub slots: u32,
    /// Bytes per result slot.
    pub slot_bytes: u32,
    /// Directory for sockets and rmem backing files; `None` = a
    /// per-process directory under the system temp dir.
    pub dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 2,
            worker_bin: None,
            worker_threads: 2,
            backend: BackendKind::Native,
            heartbeat_ms: 25,
            heartbeat_misses: 40,
            inflight_per_worker: 2,
            max_retries: 3,
            slots: 32,
            slot_bytes: 8192,
            dir: None,
        }
    }
}

/// One worker process as the router sees it.
struct WorkerSlot {
    /// Bumped on every (re)spawn; packets and threads from older
    /// generations are ignored.
    generation: u64,
    pid: u32,
    child: Option<Child>,
    chan: Option<Arc<WireChan>>,
    rmem: Option<Arc<RmemHandle>>,
    slot_bytes: u32,
    up: bool,
    /// Excluded from dispatch targeting (rolling restart).
    draining: bool,
    /// A spawn attempt is in progress (serializes respawners).
    respawning: bool,
    last_hb: Option<Instant>,
    inflight: u32,
    /// MTAPI tasks executed, from the last heartbeat.
    executed: u64,
    restarts: u64,
}

impl WorkerSlot {
    fn new() -> WorkerSlot {
        WorkerSlot {
            generation: 0,
            pid: 0,
            child: None,
            chan: None,
            rmem: None,
            slot_bytes: 0,
            up: false,
            draining: false,
            respawning: false,
            last_hb: None,
            inflight: 0,
            executed: 0,
            restarts: 0,
        }
    }
}

/// A dispatched, not-yet-completed job.
struct Inflight {
    worker: usize,
    generation: u64,
    job: QueuedJob,
    retries: u32,
    cancel_sent: bool,
}

struct Inner {
    workers: Vec<WorkerSlot>,
    inflight: HashMap<u64, Inflight>,
}

/// `cluster.*` handles in the runtime's metrics registry.
struct ClusterMetrics {
    dispatched: Arc<Counter>,
    retries: Arc<Counter>,
    restarts: Arc<Counter>,
    escalations: Arc<Counter>,
    inline_results: Arc<Counter>,
    rmem_fetched: Arc<Counter>,
    workers_up: Arc<Gauge>,
    inflight: Arc<Gauge>,
    slots_held: Arc<Gauge>,
}

/// The multi-process dispatcher (see the module docs).  Constructed
/// with [`Router::new`], handed to
/// [`romp_serve::Server::start_with_dispatch`] as an `Arc<dyn
/// Dispatch>`; all supervision runs on threads it spawns from
/// [`Dispatch::run`].
pub struct Router {
    cfg: ClusterConfig,
    dir: PathBuf,
    /// MRAPI node used to attach workers' file-backed rmem segments.
    node: Node,
    /// Keeps the node's domain registry alive.
    _sys: MrapiSystem,
    inner: Mutex<Inner>,
    /// Signals dispatch capacity and in-flight completions.
    cv: Condvar,
    ctx: OnceLock<DispatchCtx>,
    metrics: OnceLock<ClusterMetrics>,
    me: OnceLock<Weak<Router>>,
    stop: AtomicBool,
    restart_requested: AtomicBool,
    // Truth counters (metrics handles mirror these once `run` begins).
    n_dispatched: AtomicU64,
    n_retries: AtomicU64,
    n_restarts: AtomicU64,
    n_escalations: AtomicU64,
    n_inline: AtomicU64,
    n_rmem_fetched: AtomicU64,
    /// rmem slots received in `Done` and not yet released back — the
    /// drain report's leak detector.
    slots_outstanding: AtomicI64,
}

impl Router {
    /// Build a router (no processes spawned yet — that happens when the
    /// server calls [`Dispatch::run`]).  Creates the socket/rmem
    /// directory and the MRAPI attach node.
    pub fn new(cfg: ClusterConfig) -> std::io::Result<Arc<Router>> {
        let dir = cfg.dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("romp-cluster-{}", std::process::id()))
        });
        std::fs::create_dir_all(&dir)?;
        let sys = MrapiSystem::new_t4240();
        // Node id past any worker id: the workers live in their own
        // processes, but keep the ids disjoint for log readability.
        let node = sys
            .initialize(DomainId(CLUSTER_DOMAIN), NodeId(1000))
            .map_err(|e| std::io::Error::other(format!("mrapi init: {e}")))?;
        let workers = (0..cfg.workers.max(1)).map(|_| WorkerSlot::new()).collect();
        let router = Arc::new(Router {
            cfg,
            dir,
            node,
            _sys: sys,
            inner: Mutex::new(Inner {
                workers,
                inflight: HashMap::new(),
            }),
            cv: Condvar::new(),
            ctx: OnceLock::new(),
            metrics: OnceLock::new(),
            me: OnceLock::new(),
            stop: AtomicBool::new(false),
            restart_requested: AtomicBool::new(false),
            n_dispatched: AtomicU64::new(0),
            n_retries: AtomicU64::new(0),
            n_restarts: AtomicU64::new(0),
            n_escalations: AtomicU64::new(0),
            n_inline: AtomicU64::new(0),
            n_rmem_fetched: AtomicU64::new(0),
            slots_outstanding: AtomicI64::new(0),
        });
        router
            .me
            .set(Arc::downgrade(&router))
            .unwrap_or_else(|_| unreachable!("fresh OnceLock"));
        Ok(router)
    }

    /// Number of workers currently up (test hook).
    pub fn workers_up(&self) -> usize {
        self.inner.lock().workers.iter().filter(|w| w.up).count()
    }

    /// OS pids of the live workers, by worker index (test hook: the
    /// chaos test's SIGKILL target).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.inner
            .lock()
            .workers
            .iter()
            .map(|w| if w.up { w.pid } else { 0 })
            .collect()
    }

    /// Total worker (re)spawns after the initial launch (test hook).
    pub fn restarts(&self) -> u64 {
        self.n_restarts.load(Ordering::Relaxed)
    }

    /// Total orphaned-job retries (test hook).
    pub fn retries(&self) -> u64 {
        self.n_retries.load(Ordering::Relaxed)
    }

    fn me(&self) -> Arc<Router> {
        self.me
            .get()
            .and_then(Weak::upgrade)
            .expect("router alive while its threads run")
    }

    fn m(&self) -> Option<&ClusterMetrics> {
        self.metrics.get()
    }

    fn set_pool_gauges(&self, inner: &Inner) {
        if let Some(m) = self.m() {
            m.workers_up
                .set(inner.workers.iter().filter(|w| w.up).count() as u64);
            m.inflight.set(inner.inflight.len() as u64);
        }
    }

    /// Spawn (or respawn) worker `id`: bind the listener, launch the
    /// process, wait for `Hello`, attach its rmem segment, start its
    /// receive thread.  Serialized per worker by the `respawning` flag;
    /// a no-op when the worker is already up or being spawned.
    fn spawn_worker(&self, id: usize) -> Result<(), String> {
        let generation = {
            let mut inner = self.inner.lock();
            let ws = &mut inner.workers[id];
            if ws.up || ws.respawning {
                return Ok(());
            }
            ws.respawning = true;
            ws.generation += 1;
            ws.generation
        };
        let result = self.spawn_worker_inner(id, generation);
        if result.is_err() {
            let mut inner = self.inner.lock();
            inner.workers[id].respawning = false;
        }
        result
    }

    fn spawn_worker_inner(&self, id: usize, generation: u64) -> Result<(), String> {
        let sock = self.dir.join(format!("worker-{id}-{generation}.sock"));
        let rmem_path = self.dir.join(format!("worker-{id}-{generation}.rmem"));
        let _ = std::fs::remove_file(&sock);
        let _ = std::fs::remove_file(&rmem_path);
        let listener = WireListener::bind(&sock).map_err(|e| format!("bind {sock:?}: {e}"))?;
        let bin = self
            .cfg
            .worker_bin
            .clone()
            .or_else(locate_worker_bin)
            .ok_or("romp-worker binary not found (pass --worker-bin or set ROMP_WORKER_BIN)")?;
        let mut child = Command::new(&bin)
            .arg("--socket")
            .arg(&sock)
            .arg("--worker-id")
            .arg(id.to_string())
            .arg("--threads")
            .arg(self.cfg.worker_threads.to_string())
            .arg("--backend")
            .arg(self.cfg.backend.label())
            .arg("--rmem-path")
            .arg(&rmem_path)
            .arg("--slots")
            .arg(self.cfg.slots.to_string())
            .arg("--slot-bytes")
            .arg(self.cfg.slot_bytes.to_string())
            .arg("--heartbeat-ms")
            .arg(self.cfg.heartbeat_ms.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let pid = child.id();
        let setup = (|| -> Result<(WireChan, u32, u32), String> {
            let chan = listener
                .accept(Duration::from_secs(10))
                .map_err(|e| format!("worker {id} never connected: {e}"))?;
            // Hello is the first packet by protocol; tolerate strays.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                let pkt = chan
                    .recv_timeout(left)
                    .map_err(|e| format!("worker {id} hello: {e}"))?;
                match ToRouter::decode(&pkt) {
                    Ok(ToRouter::Hello {
                        slot_bytes, slots, ..
                    }) => return Ok((chan, slots, slot_bytes)),
                    Ok(_) => continue,
                    Err(e) => return Err(format!("worker {id} bad hello: {e}")),
                }
            }
        })();
        let (chan, _slots, slot_bytes) = match setup {
            Ok(v) => v,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        let rmem =
            match self
                .node
                .rmem_attach_file(id as u32, &rmem_path, &RmemAttributes::default())
            {
                Ok(r) => Arc::new(r),
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!("attach rmem {rmem_path:?}: {e}"));
                }
            };
        let chan = Arc::new(chan);
        {
            let mut inner = self.inner.lock();
            let ws = &mut inner.workers[id];
            ws.pid = pid;
            ws.child = Some(child);
            ws.chan = Some(Arc::clone(&chan));
            ws.rmem = Some(rmem);
            ws.slot_bytes = slot_bytes;
            ws.up = true;
            ws.draining = false;
            ws.respawning = false;
            ws.last_hb = Some(Instant::now());
            ws.inflight = 0;
            self.set_pool_gauges(&inner);
        }
        self.cv.notify_all();
        let me = self.me();
        std::thread::Builder::new()
            .name(format!("cluster-rx-{id}"))
            .spawn(move || me.rx_loop(id, generation, chan))
            .map_err(|e| format!("spawn rx thread: {e}"))?;
        Ok(())
    }

    /// Per-worker receive loop: heartbeats, completions, death.
    fn rx_loop(&self, id: usize, generation: u64, chan: Arc<WireChan>) {
        let poll = Duration::from_millis(self.cfg.heartbeat_ms.max(1) * 4);
        loop {
            match chan.recv_timeout(poll) {
                Ok(pkt) => match ToRouter::decode(&pkt) {
                    Ok(ToRouter::Heartbeat {
                        inflight, executed, ..
                    }) => {
                        let mut inner = self.inner.lock();
                        let ws = &mut inner.workers[id];
                        if ws.generation == generation {
                            ws.last_hb = Some(Instant::now());
                            ws.executed = executed;
                            let _ = inflight;
                        }
                    }
                    Ok(ToRouter::Done {
                        job,
                        state,
                        ok,
                        wall_us,
                        slot,
                        len,
                        inline,
                    }) => self.handle_done(
                        id, generation, &chan, job, state, ok, wall_us, slot, len, inline,
                    ),
                    Ok(ToRouter::Hello { .. }) => {}
                    Err(e) => {
                        eprintln!(
                            "romp-cluster: worker {id} sent a bad packet ({e}); restarting it"
                        );
                        self.handle_worker_death(id, generation);
                        return;
                    }
                },
                Err(e) if e.0 == McapiStatus::Timeout => {
                    // Liveness is judged by the supervisor from
                    // `last_hb`; this thread just keeps listening while
                    // its generation is current.
                    if self.inner.lock().workers[id].generation != generation {
                        return;
                    }
                }
                Err(_) => {
                    // Channel closed: worker death (or its graceful
                    // exit, which the generation/up guard makes a no-op).
                    self.handle_worker_death(id, generation);
                    return;
                }
            }
        }
    }

    /// A worker reported a job terminal: fetch the detail (rmem slot or
    /// inline), release the slot, reconcile the terminal state against
    /// the router's own token, record it.
    #[allow(clippy::too_many_arguments)]
    fn handle_done(
        &self,
        id: usize,
        generation: u64,
        chan: &Arc<WireChan>,
        job: u64,
        wstate: JobState,
        ok: bool,
        wall_us: u64,
        slot: u32,
        len: u32,
        inline: Vec<u8>,
    ) {
        let (entry, rmem, slot_bytes) = {
            let mut inner = self.inner.lock();
            let entry = match inner.inflight.get(&job) {
                Some(inf) if inf.worker == id && inf.generation == generation => {
                    inner.inflight.remove(&job)
                }
                _ => None,
            };
            let ws = &mut inner.workers[id];
            let rmem = ws.rmem.clone();
            let slot_bytes = ws.slot_bytes;
            if entry.is_some() {
                ws.inflight = ws.inflight.saturating_sub(1);
            }
            self.set_pool_gauges(&inner);
            (entry, rmem, slot_bytes)
        };
        // Fetch the detail and release the slot even when the job entry
        // is stale (a retry completed elsewhere first) — the slot is
        // real either way.
        let detail = if slot == SLOT_INLINE {
            self.n_inline.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.m() {
                m.inline_results.incr();
            }
            inline
        } else {
            self.slots_outstanding.fetch_add(1, Ordering::AcqRel);
            let mut buf = vec![0u8; len as usize];
            let read_ok = rmem
                .as_ref()
                .map(|r| {
                    r.read((slot as usize) * (slot_bytes as usize), &mut buf)
                        .is_ok()
                })
                .unwrap_or(false);
            let _ = chan.send(&ToWorker::Release { slot }.encode());
            let held = self.slots_outstanding.fetch_sub(1, Ordering::AcqRel) - 1;
            self.n_rmem_fetched.fetch_add(len as u64, Ordering::Relaxed);
            if let Some(m) = self.m() {
                m.rmem_fetched.add(len as u64);
                m.slots_held.set(held.max(0) as u64);
            }
            if read_ok {
                buf
            } else {
                b"rmem read failed".to_vec()
            }
        };
        let Some(inf) = entry else { return };
        let outcome = JobOutcome {
            ok,
            wall_us,
            detail: String::from_utf8_lossy(&detail).into_owned(),
        };
        // The worker's Cancelled/TimedOut verdicts come from the very
        // token the router forwarded — trust them.  For Done/Failed,
        // re-check the token: a cancel may have fired after the worker
        // sealed its outcome.
        let (state, outcome) = match wstate {
            JobState::Cancelled | JobState::TimedOut => (wstate, outcome),
            _ => terminal_for(inf.job.cancel.reason(), outcome),
        };
        if let Some(ctx) = self.ctx.get() {
            ctx.complete(
                job,
                &inf.job.spec.label(),
                state,
                outcome,
                wall_us.saturating_mul(1000),
            );
        }
        self.cv.notify_all();
    }

    /// A worker is gone (channel closed, heartbeat silence, or
    /// escalation kill): reap it, settle its orphaned jobs (terminal if
    /// their token fired, retried on a survivor otherwise), respawn.
    /// Generation-guarded — stale callers return immediately.
    fn handle_worker_death(&self, id: usize, generation: u64) {
        let (child, chan, orphans) = {
            let mut inner = self.inner.lock();
            let ws = &mut inner.workers[id];
            if ws.generation != generation || !ws.up {
                return;
            }
            ws.up = false;
            ws.draining = false;
            ws.last_hb = None;
            ws.inflight = 0;
            let child = ws.child.take();
            let chan = ws.chan.take();
            ws.rmem = None;
            let ids: Vec<u64> = inner
                .inflight
                .iter()
                .filter(|(_, inf)| inf.worker == id && inf.generation == generation)
                .map(|(k, _)| *k)
                .collect();
            let orphans: Vec<Inflight> = ids
                .iter()
                .filter_map(|k| inner.inflight.remove(k))
                .collect();
            self.set_pool_gauges(&inner);
            (child, chan, orphans)
        };
        drop(chan);
        if let Some(mut c) = child {
            let _ = c.kill();
            let _ = c.wait();
        }
        if !orphans.is_empty() || !self.stop.load(Ordering::Acquire) {
            eprintln!(
                "romp-cluster: worker {id} (generation {generation}) died with {} job(s) in flight",
                orphans.len()
            );
        }
        // Respawn before settling orphans: a single-worker pool must
        // have somewhere for the retries to land.
        let stopping = self.stop.load(Ordering::Acquire);
        if !stopping {
            self.n_restarts.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.m() {
                m.restarts.incr();
            }
            if let Err(e) = self.spawn_worker(id) {
                // Leave it down; the supervisor retries every tick.
                eprintln!("romp-cluster: respawn of worker {id} failed: {e}");
            }
        }
        for mut inf in orphans {
            if let Some(reason) = inf.job.cancel.reason() {
                let (state, outcome) = terminal_for(
                    Some(reason),
                    JobOutcome {
                        ok: false,
                        wall_us: 0,
                        detail: "worker died during cancellation".into(),
                    },
                );
                if let Some(ctx) = self.ctx.get() {
                    ctx.complete(inf.job.id, &inf.job.spec.label(), state, outcome, 0);
                }
            } else if inf.retries < self.cfg.max_retries && !stopping {
                inf.retries += 1;
                self.n_retries.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.m() {
                    m.retries.incr();
                }
                self.dispatch_job(inf.job, inf.retries);
            } else if let Some(ctx) = self.ctx.get() {
                ctx.complete(
                    inf.job.id,
                    &inf.job.spec.label(),
                    JobState::Failed,
                    JobOutcome {
                        ok: false,
                        wall_us: 0,
                        detail: format!("worker {id} died; retries exhausted"),
                    },
                    0,
                );
            }
        }
        self.cv.notify_all();
    }

    /// Place one job on a worker (called from the dispatch loop and the
    /// orphan-retry path).  Blocks while the pool is saturated; settles
    /// the job terminal if its token fires while waiting.
    fn dispatch_job(&self, job: QueuedJob, retries: u32) {
        let mut job = Some(job);
        loop {
            let j = job.as_ref().expect("job present until placed");
            if let Some(reason) = j.cancel.reason() {
                let (state, outcome) = terminal_for(
                    Some(reason),
                    JobOutcome {
                        ok: false,
                        wall_us: 0,
                        detail: "cancelled before dispatch".into(),
                    },
                );
                if let Some(ctx) = self.ctx.get() {
                    ctx.complete(j.id, &j.spec.label(), state, outcome, 0);
                }
                return;
            }
            let target = {
                let mut inner = self.inner.lock();
                match pick_worker(&inner, self.cfg.inflight_per_worker, j.affinity) {
                    Some(i) => {
                        let generation = inner.workers[i].generation;
                        let chan = inner.workers[i]
                            .chan
                            .clone()
                            .expect("eligible worker has a channel");
                        inner.workers[i].inflight += 1;
                        let pkt = ToWorker::Dispatch {
                            job: j.id,
                            spec: j.spec,
                        }
                        .encode();
                        let placed = job.take().expect("job present until placed");
                        inner.inflight.insert(
                            placed.id,
                            Inflight {
                                worker: i,
                                generation,
                                job: placed,
                                retries,
                                cancel_sent: false,
                            },
                        );
                        self.set_pool_gauges(&inner);
                        Some((i, generation, chan, pkt))
                    }
                    None => {
                        if self.stop.load(Ordering::Acquire) {
                            if let Some(ctx) = self.ctx.get() {
                                ctx.complete(
                                    j.id,
                                    &j.spec.label(),
                                    JobState::Failed,
                                    JobOutcome {
                                        ok: false,
                                        wall_us: 0,
                                        detail: "cluster shutting down".into(),
                                    },
                                    0,
                                );
                            }
                            return;
                        }
                        let _ = self.cv.wait_for(&mut inner, Duration::from_millis(50));
                        None
                    }
                }
            };
            match target {
                Some((i, generation, chan, pkt)) => {
                    if chan.send(&pkt).is_ok() {
                        self.n_dispatched.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = self.m() {
                            m.dispatched.incr();
                        }
                    } else {
                        // The death handler owns the job now (it was
                        // entered in the in-flight map): it settles or
                        // retries it.
                        self.handle_worker_death(i, generation);
                    }
                    return;
                }
                // Saturated: waited on the condvar, go pick again.
                None => continue,
            }
        }
    }

    /// Supervisor tick loop: heartbeat timeouts, cancel forwarding,
    /// downed-worker respawn retries, rolling restarts.
    fn supervisor_loop(&self) {
        let period = Duration::from_millis(self.cfg.heartbeat_ms.max(1));
        let dead_after = period * (self.cfg.heartbeat_misses.max(1) as u32);
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(period);
            let mut deaths: Vec<(usize, u64)> = Vec::new();
            let mut respawns: Vec<usize> = Vec::new();
            let mut cancels: Vec<(u64, bool, Arc<WireChan>)> = Vec::new();
            {
                let mut inner = self.inner.lock();
                for (i, ws) in inner.workers.iter().enumerate() {
                    if ws.up {
                        if let Some(hb) = ws.last_hb {
                            if hb.elapsed() > dead_after {
                                deaths.push((i, ws.generation));
                            }
                        }
                    } else if !ws.respawning {
                        respawns.push(i);
                    }
                }
                let pending: Vec<(u64, usize, bool)> = inner
                    .inflight
                    .iter()
                    .filter(|(_, inf)| !inf.cancel_sent)
                    .filter_map(|(id, inf)| {
                        inf.job
                            .cancel
                            .reason()
                            .map(|r| (*id, inf.worker, matches!(r, romp::CancelReason::Deadline)))
                    })
                    .collect();
                for (jid, w, deadline) in pending {
                    if let Some(chan) = inner.workers[w].chan.clone() {
                        if let Some(inf) = inner.inflight.get_mut(&jid) {
                            inf.cancel_sent = true;
                        }
                        cancels.push((jid, deadline, chan));
                    }
                }
            }
            for (jid, deadline, chan) in cancels {
                let _ = chan.send(&ToWorker::Cancel { job: jid, deadline }.encode());
            }
            for (i, generation) in deaths {
                eprintln!("romp-cluster: worker {i} heartbeat lost; restarting it");
                self.handle_worker_death(i, generation);
            }
            for i in respawns {
                if self.stop.load(Ordering::Acquire) {
                    break;
                }
                if let Err(e) = self.spawn_worker(i) {
                    eprintln!("romp-cluster: respawn of worker {i} failed: {e}");
                }
            }
            if self.restart_requested.swap(false, Ordering::AcqRel) {
                self.rolling_restart_now();
            }
        }
    }

    /// Cycle every worker, one at a time: drain, graceful `Exit`, reap,
    /// respawn.  Runs on the supervisor thread.
    fn rolling_restart_now(&self) {
        let n = { self.inner.lock().workers.len() };
        for id in 0..n {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            {
                let mut inner = self.inner.lock();
                let ws = &mut inner.workers[id];
                if !ws.up {
                    continue;
                }
                ws.draining = true;
            }
            // Wait out the worker's in-flight jobs (new dispatches avoid
            // a draining worker).
            loop {
                let (busy, up) = {
                    let inner = self.inner.lock();
                    (
                        inner.inflight.values().any(|inf| inf.worker == id),
                        inner.workers[id].up,
                    )
                };
                if !busy || !up || self.stop.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let (child, chan) = {
                let mut inner = self.inner.lock();
                let ws = &mut inner.workers[id];
                if !ws.up {
                    continue;
                }
                ws.up = false;
                ws.draining = false;
                ws.last_hb = None;
                ws.rmem = None;
                (ws.child.take(), ws.chan.take())
            };
            if let Some(ch) = &chan {
                let _ = ch.send(&ToWorker::Exit.encode());
            }
            drop(chan);
            if let Some(mut c) = child {
                reap_with_timeout(&mut c, Duration::from_secs(5));
            }
            self.n_restarts.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.m() {
                m.restarts.incr();
            }
            {
                let mut inner = self.inner.lock();
                inner.workers[id].restarts += 1;
                self.set_pool_gauges(&inner);
            }
            if let Err(e) = self.spawn_worker(id) {
                eprintln!("romp-cluster: rolling restart of worker {id} failed: {e}");
            }
        }
    }

    /// Final drain: wait for the in-flight map to empty, stop the
    /// supervisor, `Exit` every worker, reap, clean the directory.
    fn drain(&self) {
        {
            let mut inner = self.inner.lock();
            while !inner.inflight.is_empty() {
                let _ = self.cv.wait_for(&mut inner, Duration::from_millis(100));
            }
        }
        self.stop.store(true, Ordering::Release);
        self.cv.notify_all();
        let teardown: Vec<(Option<Child>, Option<Arc<WireChan>>)> = {
            let mut inner = self.inner.lock();
            inner
                .workers
                .iter_mut()
                .map(|ws| {
                    ws.up = false;
                    ws.rmem = None;
                    (ws.child.take(), ws.chan.take())
                })
                .collect()
        };
        for (child, chan) in teardown {
            if let Some(ch) = &chan {
                let _ = ch.send(&ToWorker::Exit.encode());
            }
            drop(chan);
            if let Some(mut c) = child {
                reap_with_timeout(&mut c, Duration::from_secs(5));
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Dispatch for Router {
    fn run(&self, ctx: DispatchCtx) {
        if self.ctx.set(ctx.clone()).is_err() {
            return; // a Router runs once
        }
        let reg = ctx.runtime();
        let reg = reg.tracer().metrics();
        let _ = self.metrics.set(ClusterMetrics {
            dispatched: reg.counter("cluster.dispatched"),
            retries: reg.counter("cluster.retries"),
            restarts: reg.counter("cluster.restarts"),
            escalations: reg.counter("cluster.escalations"),
            inline_results: reg.counter("cluster.rmem.inline"),
            rmem_fetched: reg.counter("cluster.rmem.bytes_fetched"),
            workers_up: reg.gauge("cluster.workers_up"),
            inflight: reg.gauge("cluster.inflight"),
            slots_held: reg.gauge("cluster.rmem.slots_held"),
        });
        let n = self.cfg.workers.max(1);
        for id in 0..n {
            if let Err(e) = self.spawn_worker(id) {
                eprintln!("romp-cluster: worker {id} failed to start: {e}");
            }
        }
        let me = self.me();
        let supervisor = std::thread::Builder::new()
            .name("cluster-supervisor".into())
            .spawn(move || me.supervisor_loop())
            .expect("spawn supervisor");
        while let Some(qjob) = ctx.pop() {
            if !ctx.begin_run(qjob.id) {
                continue;
            }
            self.dispatch_job(qjob, 0);
        }
        self.drain();
        let _ = supervisor.join();
    }

    fn escalate(&self, job: u64) -> bool {
        let target = {
            let mut inner = self.inner.lock();
            let t = inner
                .inflight
                .get(&job)
                .map(|inf| (inf.worker, inf.generation));
            if let Some((w, _)) = t {
                if let Some(c) = inner.workers[w].child.as_mut() {
                    let _ = c.kill();
                }
            }
            t
        };
        match target {
            Some((w, generation)) => {
                self.n_escalations.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.m() {
                    m.escalations.incr();
                }
                eprintln!(
                    "romp-cluster: job {job} unresponsive to cancellation; killing worker {w}"
                );
                self.handle_worker_death(w, generation);
                true
            }
            None => false,
        }
    }

    fn rolling_restart(&self) -> Option<u64> {
        let n = { self.inner.lock().workers.len() as u64 };
        self.restart_requested.store(true, Ordering::Release);
        Some(n)
    }

    fn stats_json(&self) -> Option<String> {
        let inner = self.inner.lock();
        let workers: Vec<String> = inner
            .workers
            .iter()
            .enumerate()
            .map(|(i, ws)| {
                format!(
                    "{{\"id\":{i},\"up\":{},\"pid\":{},\"generation\":{},\"inflight\":{},\"executed\":{},\"restarts\":{}}}",
                    ws.up, ws.pid, ws.generation, ws.inflight, ws.executed, ws.restarts
                )
            })
            .collect();
        Some(format!(
            "{{\"workers\":[{}],\"dispatched\":{},\"retries\":{},\"restarts\":{},\"escalations\":{},\"inline_results\":{},\"rmem_fetched_bytes\":{},\"dir\":\"{}\"}}",
            workers.join(","),
            self.n_dispatched.load(Ordering::Relaxed),
            self.n_retries.load(Ordering::Relaxed),
            self.n_restarts.load(Ordering::Relaxed),
            self.n_escalations.load(Ordering::Relaxed),
            self.n_inline.load(Ordering::Relaxed),
            self.n_rmem_fetched.load(Ordering::Relaxed),
            json_escape(&self.dir.display().to_string()),
        ))
    }

    fn rmem_leaked(&self) -> u64 {
        self.slots_outstanding.load(Ordering::Acquire).max(0) as u64
    }
}

/// Choose a dispatch target: the affinity-preferred worker when it is
/// eligible (up, not draining, has window), else the least-loaded
/// eligible worker.  `None` when the pool is saturated or empty.
fn pick_worker(inner: &Inner, window: usize, affinity: u64) -> Option<usize> {
    let eligible = |ws: &WorkerSlot| {
        ws.up && !ws.draining && ws.chan.is_some() && (ws.inflight as usize) < window.max(1)
    };
    let n = inner.workers.len();
    if affinity != 0 {
        let pref = (splitmix64(affinity) % n as u64) as usize;
        if eligible(&inner.workers[pref]) {
            return Some(pref);
        }
    }
    inner
        .workers
        .iter()
        .enumerate()
        .filter(|(_, ws)| eligible(ws))
        .min_by_key(|(i, ws)| (ws.inflight, *i))
        .map(|(i, _)| i)
}

/// The affinity-key spreader (same finalizer the runtime's shard
/// selector uses, so a key's jobs land on a stable worker).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Find `romp-worker` next to the current executable (cargo puts all
/// workspace binaries in the same target directory), or take
/// `$ROMP_WORKER_BIN`.
pub fn locate_worker_bin() -> Option<PathBuf> {
    if let Some(p) = std::env::var_os("ROMP_WORKER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for d in [dir, dir.parent().unwrap_or(dir)] {
        let cand = d.join("romp-worker");
        if cand.is_file() {
            return Some(cand);
        }
    }
    None
}

/// Wait for a child with a timeout, then SIGKILL it.
fn reap_with_timeout(child: &mut Child, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::atomic::AtomicUsize;

    static SOCK_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn pool(states: &[(bool, bool, u32)]) -> Inner {
        Inner {
            workers: states
                .iter()
                .map(|&(up, draining, inflight)| {
                    let mut ws = WorkerSlot::new();
                    ws.up = up;
                    ws.draining = draining;
                    ws.inflight = inflight;
                    ws
                })
                .collect(),
            inflight: HashMap::new(),
        }
    }

    // pick_worker requires chan.is_some(); build a loopback pair per
    // live worker (the tests never send on it).
    fn with_chans(mut inner: Inner) -> Inner {
        let dir = std::env::temp_dir().join(format!("romp-cluster-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for ws in inner.workers.iter_mut() {
            if ws.up {
                let seq = SOCK_SEQ.fetch_add(1, Ordering::Relaxed);
                let sock = dir.join(format!("pick-{seq}.sock"));
                let _ = std::fs::remove_file(&sock);
                let listener = WireListener::bind(&sock).unwrap();
                let client = std::thread::spawn({
                    let sock = sock.clone();
                    move || WireChan::connect(&sock, Duration::from_secs(5))
                });
                let server = listener.accept(Duration::from_secs(5)).unwrap();
                let _ = client.join().unwrap();
                ws.chan = Some(Arc::new(server));
                let _ = std::fs::remove_file(&sock);
            }
        }
        inner
    }

    #[test]
    fn pick_prefers_least_loaded_eligible() {
        let inner = with_chans(pool(&[
            (true, false, 2),
            (true, false, 0),
            (false, false, 0),
        ]));
        assert_eq!(pick_worker(&inner, 2, 0), Some(1));
    }

    #[test]
    fn pick_skips_draining_and_saturated() {
        let inner = with_chans(pool(&[(true, true, 0), (true, false, 2)]));
        assert_eq!(pick_worker(&inner, 2, 0), None);
    }

    #[test]
    fn affinity_is_stable_and_falls_back() {
        let inner = with_chans(pool(&[(true, false, 0), (true, false, 0)]));
        let key = 0xFEED_F00Du64;
        let first = pick_worker(&inner, 2, key).unwrap();
        for _ in 0..10 {
            assert_eq!(pick_worker(&inner, 2, key), Some(first));
        }
        // Saturate the preferred worker: the key falls back to the other.
        let mut inner = inner;
        inner.workers[first].inflight = 2;
        let other = pick_worker(&inner, 2, key).unwrap();
        assert_ne!(other, first);
    }
}
