//! Standalone NAS kernel runner, in the spirit of the NPB report format.
//!
//! ```text
//! cargo run -p romp-npb --release --bin npb -- <EP|CG|IS|MG|FT> <S|W|A> <threads> [native|mca]
//! ```

use romp::{BackendKind, Config, Runtime};
use romp_npb::{Class, NpbKernel};

fn usage() -> ! {
    eprintln!("usage: npb <EP|CG|IS|MG|FT> <S|W|A> <threads> [native|mca]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let kernel = match args[0].to_ascii_uppercase().as_str() {
        "EP" => NpbKernel::Ep,
        "CG" => NpbKernel::Cg,
        "IS" => NpbKernel::Is,
        "MG" => NpbKernel::Mg,
        "FT" => NpbKernel::Ft,
        _ => usage(),
    };
    let Some(class) = Class::parse(&args[1]) else {
        usage()
    };
    let Ok(threads) = args[2].parse::<usize>() else {
        usage()
    };
    let backend = match args.get(3).map(|s| s.as_str()) {
        None | Some("mca") => BackendKind::Mca,
        Some("native") => BackendKind::Native,
        _ => usage(),
    };

    let rt = Runtime::with_config(Config::default().with_backend(backend)).unwrap();
    println!(
        " NAS Parallel Benchmarks (romp reproduction) — {} Benchmark",
        kernel.name()
    );
    println!(
        " Class: {}   Threads: {}   Backend: {}",
        class.label(),
        threads,
        backend.label()
    );
    let res = kernel.run(&rt, threads, class);
    println!(" Time in seconds    = {:>12.4}", res.wall_s);
    println!(" Mop/s total        = {:>12.2}", res.mops);
    println!(
        " Verification       = {}",
        if res.verified() {
            "SUCCESSFUL"
        } else {
            "FAILED"
        }
    );
    println!(" Detail             = {:?}", res.verification);
    if !res.verified() {
        std::process::exit(1);
    }
}
