//! # romp-npb — NAS Parallel Benchmarks on the romp runtime
//!
//! The paper's Figure 4 evaluates MCA-libGOMP against stock libGOMP with the
//! NAS Parallel Benchmarks (OpenMP version, class A), reporting execution
//! time and speedup from 1 to 24 threads.  This crate reimplements five NPB
//! kernels in Rust on the [`romp`] API — the three the paper names (EP, CG,
//! IS) plus MG and FT to cover the suite's memory- and FFT-bound behaviours:
//!
//! | kernel | what it stresses | schedule used |
//! |--------|------------------|---------------|
//! | **EP** | pure compute (gaussian deviates), near-zero communication | dynamic over seed blocks |
//! | **CG** | sparse matrix-vector products, irregular memory | static rows + reductions |
//! | **IS** | integer bucket-sort ranking, bandwidth + histogram merge | static blocks + critical-free merge |
//! | **MG** | multigrid V-cycles, stencils across grid levels | static planes |
//! | **FT** | 3-D FFT, strided memory, transposeless line FFTs | static lines |
//!
//! ## Verification
//!
//! Two layers, recorded in each [`KernelResult`]:
//!
//! 1. **Published NPB reference values** where this reproduction is
//!    confident of them: EP's `sx`/`sy` sums and CG's `zeta` per class.
//! 2. **Self-consistency** everywhere: every kernel's parallel result is
//!    compared against its own serial execution (same arithmetic, team of
//!    one), and kernel-specific invariants are checked (IS produces a
//!    sorted permutation; MG's residual norm falls; FT's inverse transform
//!    restores its input).  This is the paper's §6A discipline — the
//!    validation suite exists to catch exactly the runtime bugs the paper
//!    reports finding.
//!
//! ## Problem classes
//!
//! NPB classes S, W and A are supported ([`Class`]); the paper uses class A,
//! and notes S/W are for correctness checking.  The Figure 4 harness
//! defaults to W so a full 1–24-thread sweep stays tractable on a small
//! host, with `--class A` available for the paper-scale run.

pub mod cg;
pub mod common;
pub mod ep;
pub mod ft;
pub mod is;
pub mod mg;

pub use common::{Class, KernelResult, Verification};

/// The implemented kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbKernel {
    Ep,
    Cg,
    Is,
    Mg,
    Ft,
}

impl NpbKernel {
    /// All kernels, Figure 4 order.
    pub fn all() -> [NpbKernel; 5] {
        [
            NpbKernel::Ep,
            NpbKernel::Cg,
            NpbKernel::Is,
            NpbKernel::Mg,
            NpbKernel::Ft,
        ]
    }

    /// Uppercase NPB name.
    pub fn name(self) -> &'static str {
        match self {
            NpbKernel::Ep => "EP",
            NpbKernel::Cg => "CG",
            NpbKernel::Is => "IS",
            NpbKernel::Mg => "MG",
            NpbKernel::Ft => "FT",
        }
    }

    /// Memory intensity β for the platform cost model (fraction of serial
    /// time that is DRAM-bandwidth-bound; see
    /// [`mca_platform::vtime::CostModel`]).  EP is compute-pure; the others
    /// are calibrated from their arithmetic intensities so the modeled
    /// 24-thread speedups land in the paper's reported range (≈15×, EP
    /// near-ideal).
    pub fn beta(self) -> f64 {
        match self {
            NpbKernel::Ep => 0.02,
            NpbKernel::Cg => 0.30,
            NpbKernel::Is => 0.35,
            NpbKernel::Mg => 0.30,
            NpbKernel::Ft => 0.25,
        }
    }

    /// Run this kernel on `rt` with a team of `threads`.
    pub fn run(self, rt: &romp::Runtime, threads: usize, class: Class) -> KernelResult {
        match self {
            NpbKernel::Ep => ep::run(rt, threads, class),
            NpbKernel::Cg => cg::run(rt, threads, class),
            NpbKernel::Is => is::run(rt, threads, class),
            NpbKernel::Mg => mg::run(rt, threads, class),
            NpbKernel::Ft => ft::run(rt, threads, class),
        }
    }
}
