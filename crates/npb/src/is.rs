//! IS — the Integer Sort kernel.
//!
//! Ranks `N` integer keys drawn from NPB's LCG (each key is the scaled sum
//! of four uniform deviates, giving a binomial-ish distribution) in ten
//! timed iterations; each iteration perturbs two keys, recomputes every
//! key's rank by counting sort, and partially verifies five probe ranks.
//! After the timed loop the keys are fully sorted from the final ranks and
//! the order is verified — NPB's `full_verify`.
//!
//! Parallelisation: per-worker private histograms over static key blocks,
//! a statically partitioned merge across the key range, then an (untimed,
//! tiny) exclusive prefix scan by the master — the same structure as the
//! NPB OpenMP version's `key_buff` work sharing.
//!
//! Verification: class S checks the published `test_rank_array` from
//! `is.c`; all classes additionally check full sortedness, permutation
//! preservation, and parallel-equals-serial rank agreement (§6A
//! self-consistency).

use romp::{Runtime, Schedule};

use crate::common::randlc::{randlc, NPB_A, NPB_SEED};
use crate::common::{Class, KernelResult, SyncSlice, Verification};

/// Timed ranking iterations (NPB `MAX_ITERATIONS`).
const MAX_ITERATIONS: usize = 10;
/// Probe count (NPB `TEST_ARRAY_SIZE`).
const TEST_ARRAY_SIZE: usize = 5;

/// Per-class `(total_keys, max_key)`.
pub fn params(class: Class) -> (usize, usize) {
    match class {
        Class::S => (1 << 16, 1 << 11),
        Class::W => (1 << 20, 1 << 16),
        Class::A => (1 << 23, 1 << 19),
    }
}

/// Published probe indices/ranks for class S (from `is.c`); the other
/// classes are verified self-consistently.
const S_TEST_INDEX: [usize; TEST_ARRAY_SIZE] = [48427, 17148, 23627, 62548, 4431];
const S_TEST_RANK: [i64; TEST_ARRAY_SIZE] = [0, 18, 346, 64917, 65463];

/// NPB `create_seq`: the initial key array.
pub fn create_seq(total_keys: usize, max_key: usize) -> Vec<u32> {
    let mut seed = NPB_SEED;
    let k = (max_key / 4) as f64;
    (0..total_keys)
        .map(|_| {
            let mut x = randlc(&mut seed, NPB_A);
            x += randlc(&mut seed, NPB_A);
            x += randlc(&mut seed, NPB_A);
            x += randlc(&mut seed, NPB_A);
            (k * x) as u32
        })
        .collect()
}

/// One ranking pass: counting histogram + exclusive scan.
/// `ranks[k]` = number of keys strictly below `k` (NPB's
/// `key_buff_ptr[k-1]` probe value is `ranks[k]`).
pub fn rank_keys(rt: &Runtime, threads: usize, keys: &[u32], max_key: usize) -> Vec<u32> {
    let n = keys.len();
    let mut locals: Vec<Vec<u32>> = (0..threads).map(|_| vec![0u32; max_key]).collect();
    let mut merged = vec![0u32; max_key];
    {
        let local_views: Vec<SyncSlice<u32>> = locals
            .iter_mut()
            .map(|l| SyncSlice::new(l.as_mut_slice()))
            .collect();
        let merged_view = SyncSlice::new(merged.as_mut_slice());
        rt.parallel(threads, |w| {
            let tid = w.thread_num();
            // Phase 1: private histogram over my static key block.
            // SAFETY: local_views[tid] is written only by worker tid.
            w.for_chunks_nowait(0..n as u64, Schedule::Static { chunk: None }, |chunk| {
                for i in chunk {
                    let k = keys[i as usize] as usize;
                    unsafe {
                        let c = local_views[tid].get(k);
                        local_views[tid].set(k, c + 1);
                    }
                }
            });
            w.barrier();
            // Phase 2: merge across workers, partitioned by key range.
            // SAFETY: each key index is written by exactly one worker; the
            // locals are read-only after the barrier.
            w.for_chunks_nowait(
                0..max_key as u64,
                Schedule::Static { chunk: None },
                |chunk| {
                    for k in chunk {
                        let mut sum = 0u32;
                        for lv in &local_views {
                            sum += unsafe { lv.get(k as usize) };
                        }
                        unsafe { merged_view.set(k as usize, sum) };
                    }
                },
            );
            w.barrier();
        });
    }
    // Exclusive prefix scan (max_key entries; trivial serial work).
    let mut ranks = vec![0u32; max_key];
    let mut acc = 0u32;
    for k in 0..max_key {
        ranks[k] = acc;
        acc += merged[k];
    }
    ranks
}

/// Full benchmark outcome.
#[derive(Debug, Clone)]
pub struct IsOutcome {
    /// Final ranks table (exclusive prefix counts).
    pub ranks: Vec<u32>,
    /// Probe values captured per iteration: `ranks[key_at_probe]`.
    pub probe_ranks: Vec<[u32; TEST_ARRAY_SIZE]>,
    /// Fully sorted key array (from the final iteration's ranks).
    pub sorted: Vec<u32>,
    /// Wall seconds of the timed ranking loop.
    pub timed_s: f64,
}

/// Run the full IS protocol on the given key array.
pub fn sort_protocol(
    rt: &Runtime,
    threads: usize,
    mut keys: Vec<u32>,
    max_key: usize,
    test_index: &[usize; TEST_ARRAY_SIZE],
) -> IsOutcome {
    let n = keys.len();
    let mut probe_ranks = Vec::with_capacity(MAX_ITERATIONS);
    let mut ranks = Vec::new();
    let t0 = std::time::Instant::now();
    for iteration in 1..=MAX_ITERATIONS {
        // NPB perturbs two keys each iteration.
        keys[iteration] = iteration as u32;
        keys[iteration + MAX_ITERATIONS] = (max_key - iteration) as u32;
        ranks = rank_keys(rt, threads, &keys, max_key);
        let mut probes = [0u32; TEST_ARRAY_SIZE];
        for (slot, &idx) in probes.iter_mut().zip(test_index) {
            *slot = ranks[keys[idx] as usize];
        }
        probe_ranks.push(probes);
    }
    let timed_s = t0.elapsed().as_secs_f64();
    // Untimed full sort from the final ranks (counting sort placement).
    let mut cursor: Vec<u32> = ranks.clone();
    let mut sorted = vec![0u32; n];
    for &k in &keys {
        sorted[cursor[k as usize] as usize] = k;
        cursor[k as usize] += 1;
    }
    IsOutcome {
        ranks,
        probe_ranks,
        sorted,
        timed_s,
    }
}

/// Run IS for a class with NPB verification.
pub fn run(rt: &Runtime, threads: usize, class: Class) -> KernelResult {
    let (n, max_key) = params(class);
    let keys = create_seq(n, max_key);
    // Probe indices: published for S; first five odd strides otherwise
    // (self-consistency probes).
    let test_index: [usize; TEST_ARRAY_SIZE] = match class {
        Class::S => S_TEST_INDEX,
        _ => {
            let mut t = [0usize; TEST_ARRAY_SIZE];
            for (i, slot) in t.iter_mut().enumerate() {
                *slot = (i + 1) * n / (TEST_ARRAY_SIZE + 2) + 1;
            }
            t
        }
    };
    let out = sort_protocol(rt, threads, keys.clone(), max_key, &test_index);

    // Full verification: sorted ascending, same multiset.
    let mut failures = Vec::new();
    if !out.sorted.windows(2).all(|w| w[0] <= w[1]) {
        failures.push("output not sorted".to_string());
    }
    let mut hist_in = vec![0u32; max_key];
    // Recreate the post-perturbation key array for the permutation check.
    let mut final_keys = keys;
    for iteration in 1..=MAX_ITERATIONS {
        final_keys[iteration] = iteration as u32;
        final_keys[iteration + MAX_ITERATIONS] = (max_key - iteration) as u32;
    }
    for &k in &final_keys {
        hist_in[k as usize] += 1;
    }
    let mut hist_out = vec![0u32; max_key];
    for &k in &out.sorted {
        hist_out[k as usize] += 1;
    }
    if hist_in != hist_out {
        failures.push("output is not a permutation of the input".to_string());
    }
    // Class S: published partial verification (is.c's rank ± iteration
    // pattern for class S: probes 0..=2 drift up, 3..=4 drift down).
    if class == Class::S {
        for (it0, probes) in out.probe_ranks.iter().enumerate() {
            let iteration = (it0 + 1) as i64;
            for i in 0..TEST_ARRAY_SIZE {
                let want = if i <= 2 {
                    S_TEST_RANK[i] + iteration
                } else {
                    S_TEST_RANK[i] - iteration
                };
                if probes[i] as i64 != want {
                    failures.push(format!(
                        "partial verify: iter {iteration} probe {i}: rank {} want {want}",
                        probes[i]
                    ));
                }
            }
        }
    }
    let verification = if failures.is_empty() {
        if class == Class::S {
            Verification::Published(
                "sorted permutation + is.c class-S partial verification".to_string(),
            )
        } else {
            Verification::SelfConsistent("sorted permutation of input".to_string())
        }
    } else {
        Verification::Failed(failures.join("; "))
    };
    KernelResult {
        name: "IS",
        class,
        threads,
        wall_s: out.timed_s,
        mops: (MAX_ITERATIONS * n) as f64 / out.timed_s / 1e6,
        verification,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    fn rt() -> Runtime {
        Runtime::with_backend(BackendKind::Native).unwrap()
    }

    #[test]
    fn key_distribution_is_centered() {
        let (n, max_key) = params(Class::S);
        let keys = create_seq(n, max_key);
        assert_eq!(keys.len(), n);
        assert!(keys.iter().all(|&k| (k as usize) < max_key));
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / n as f64;
        // Sum of four U(0,1) has mean 2 → keys center at max_key/2.
        assert!((mean / max_key as f64 - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranks_count_smaller_keys() {
        let rt = rt();
        let keys = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        let ranks = rank_keys(&rt, 3, &keys, 10);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[1], 0, "nothing below 1");
        assert_eq!(ranks[2], 2, "two 1s below 2");
        assert_eq!(ranks[5], 5);
        assert_eq!(ranks[9], 7);
    }

    #[test]
    fn class_s_passes_published_partial_verification() {
        let res = run(&rt(), 4, Class::S);
        assert!(res.verified(), "{:?}", res.verification);
        assert!(matches!(res.verification, Verification::Published(_)));
    }

    #[test]
    fn parallel_ranks_match_serial() {
        let rt = rt();
        let (n, max_key) = (1 << 14, 1 << 10);
        let keys = create_seq(n, max_key);
        let serial = rank_keys(&rt, 1, &keys, max_key);
        for threads in [2, 5] {
            assert_eq!(
                rank_keys(&rt, threads, &keys, max_key),
                serial,
                "threads={threads}"
            );
        }
        let mca = Runtime::with_backend(BackendKind::Mca).unwrap();
        assert_eq!(rank_keys(&mca, 3, &keys, max_key), serial);
    }

    #[test]
    fn full_sort_is_correct_for_random_input() {
        let mut rng = mca_sync::rng::SmallRng::seed_from_u64(42);
        let max_key = 1 << 8;
        let keys: Vec<u32> = (0..5000)
            .map(|_| rng.gen_range(0, max_key as u64) as u32)
            .collect();
        let t = [100, 200, 300, 400, 500];
        let out = sort_protocol(&rt(), 3, keys.clone(), max_key, &t);
        assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out.sorted.len(), keys.len());
    }

    #[test]
    fn probes_drift_with_iteration() {
        // The perturbation protocol moves probe ranks every iteration for
        // class S; each iteration's probes must differ from the last.
        let (n, max_key) = params(Class::S);
        let keys = create_seq(n, max_key);
        let out = sort_protocol(&rt(), 2, keys, max_key, &S_TEST_INDEX);
        assert_eq!(out.probe_ranks.len(), MAX_ITERATIONS);
        for w in out.probe_ranks.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }
}
