//! EP — the Embarrassingly Parallel kernel.
//!
//! Generates `2^M` pairs of uniform deviates with the NPB LCG, converts the
//! accepted pairs to gaussian deviates by the polar method, and accumulates
//! the sums `sx`, `sy` plus a 10-bin histogram of deviate magnitudes.
//! Communication is a single reduction at the end, so EP scales almost
//! ideally — the paper's Figure 4 shows both runtimes "close to the ideal
//! speedup rate" for it, and the virtual-time model reproduces that with
//! β ≈ 0.
//!
//! Parallelisation matches the NPB OpenMP version: the stream is split into
//! blocks of `2^16` pairs; each block's starting seed is reached by LCG
//! jump-ahead, so any block can be computed independently and the result is
//! identical for every team size.  Blocks are distributed with a dynamic
//! schedule.

use romp::{ReduceOp, Runtime, Schedule};

use crate::common::randlc::{skip_ahead, vranlc, NPB_A};
use crate::common::{Class, KernelResult, Verification};

/// EP's own seed (`ep.f`'s `S`; note it differs from the suite default).
const EP_SEED: f64 = 271_828_183.0;
/// log2 of the pairs per block.
const MK: u32 = 16;
/// Histogram bins.
const NQ: usize = 10;

/// log2 of total pairs per class (`M`).
fn class_m(class: Class) -> u32 {
    match class {
        Class::S => 24,
        Class::W => 25,
        Class::A => 28,
    }
}

/// Published reference sums from the NPB sources.
fn reference(class: Class) -> (f64, f64) {
    match class {
        #[allow(clippy::excessive_precision)] // NPB-published digits kept verbatim
        Class::S => (-3.247_834_652_034_740e3, -6.958_407_078_382_297e3),
        Class::W => (-2.863_319_731_645_753e3, -6.320_053_679_109_499e3),
        Class::A => (-4.295_875_165_629_892e3, -1.580_732_573_678_431e4),
    }
}

/// Raw accumulators from one EP computation.
#[derive(Debug, Clone, PartialEq)]
pub struct EpSums {
    pub sx: f64,
    pub sy: f64,
    pub q: [f64; NQ],
}

impl EpSums {
    /// Accepted-pair count (sum of the histogram).
    pub fn gaussian_count(&self) -> f64 {
        self.q.iter().sum()
    }
}

/// Compute one block of `2^MK` pairs starting `block * 2^(MK+1)` steps into
/// EP's stream.
fn compute_block(block: u64, x: &mut [f64]) -> EpSums {
    let nk = 1u64 << MK;
    let mut seed = skip_ahead(EP_SEED, 2 * nk * block);
    vranlc(&mut seed, NPB_A, x);
    let mut sums = EpSums {
        sx: 0.0,
        sy: 0.0,
        q: [0.0; NQ],
    };
    for i in 0..nk as usize {
        let x1 = 2.0 * x[2 * i] - 1.0;
        let x2 = 2.0 * x[2 * i + 1] - 1.0;
        let t1 = x1 * x1 + x2 * x2;
        if t1 <= 1.0 {
            let t2 = (-2.0 * t1.ln() / t1).sqrt();
            let t3 = x1 * t2;
            let t4 = x2 * t2;
            let l = t3.abs().max(t4.abs()) as usize;
            sums.q[l] += 1.0;
            sums.sx += t3;
            sums.sy += t4;
        }
    }
    sums
}

/// Run EP with an explicit `m` (`2^m` pairs) — the class-independent core,
/// also used by tests with small problem sizes.
pub fn run_with_m(rt: &Runtime, threads: usize, m: u32) -> EpSums {
    assert!(m >= MK, "problem must be at least one block");
    let nn = 1u64 << (m - MK);
    let nk = 1usize << MK;
    parallel_sweep(rt, threads, nn, nk)
}

/// The parallel sweep: dynamic blocks, per-worker partials, tree reduction
/// through the runtime (sx, sy, and each histogram bin).
fn parallel_sweep(rt: &Runtime, threads: usize, nn: u64, nk: usize) -> EpSums {
    let result = std::sync::Mutex::new(EpSums {
        sx: 0.0,
        sy: 0.0,
        q: [0.0; NQ],
    });
    rt.parallel(threads, |w| {
        let mut x = vec![0.0f64; 2 * nk];
        let mut local = EpSums {
            sx: 0.0,
            sy: 0.0,
            q: [0.0; NQ],
        };
        w.for_chunks_nowait(0..nn, Schedule::Dynamic { chunk: 1 }, |blocks| {
            for b in blocks {
                let s = compute_block(b, &mut x);
                local.sx += s.sx;
                local.sy += s.sy;
                for (acc, v) in local.q.iter_mut().zip(s.q) {
                    *acc += v;
                }
            }
        });
        let sx = w.reduce_f64(local.sx, ReduceOp::Sum);
        let sy = w.reduce_f64(local.sy, ReduceOp::Sum);
        let mut q = [0.0; NQ];
        for (bin, slot) in q.iter_mut().enumerate() {
            *slot = w.reduce_f64(local.q[bin], ReduceOp::Sum);
        }
        if w.is_master() {
            *result.lock().unwrap() = EpSums { sx, sy, q };
        }
    });
    result.into_inner().unwrap()
}

/// Run EP for a class and verify against the published NPB sums.
pub fn run(rt: &Runtime, threads: usize, class: Class) -> KernelResult {
    let m = class_m(class);
    let t0 = std::time::Instant::now();
    let sums = run_with_m(rt, threads, m);
    let wall_s = t0.elapsed().as_secs_f64();
    let (sx_ref, sy_ref) = reference(class);
    let eps = 1e-8;
    let sx_err = ((sums.sx - sx_ref) / sx_ref).abs();
    let sy_err = ((sums.sy - sy_ref) / sy_ref).abs();
    let verification = if sx_err <= eps && sy_err <= eps {
        Verification::Published(format!(
            "sx={:.12e} sy={:.12e} match NPB references (rel err {:.1e}/{:.1e})",
            sums.sx, sums.sy, sx_err, sy_err
        ))
    } else {
        Verification::Failed(format!(
            "sx={:.12e} (want {:.12e}), sy={:.12e} (want {:.12e})",
            sums.sx, sx_ref, sums.sy, sy_ref
        ))
    };
    let pairs = (1u64 << m) as f64;
    KernelResult {
        name: "EP",
        class,
        threads,
        wall_s,
        mops: 2.0 * pairs / wall_s / 1e6,
        verification,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    fn rt() -> Runtime {
        Runtime::with_backend(BackendKind::Native).unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let rt = rt();
        let serial = run_with_m(&rt, 1, 18);
        for threads in [2, 3, 5] {
            let par = run_with_m(&rt, threads, 18);
            // Summation order differs across team sizes; the histogram is
            // integer-exact, the sums match to reduction-roundoff.
            assert!(
                ((par.sx - serial.sx) / serial.sx).abs() < 1e-12,
                "threads={threads}"
            );
            assert!(((par.sy - serial.sy) / serial.sy).abs() < 1e-12);
            assert_eq!(par.q, serial.q);
        }
    }

    #[test]
    fn histogram_counts_accepted_pairs() {
        let rt = rt();
        let s = run_with_m(&rt, 2, 17);
        let total_pairs = (1u64 << 17) as f64;
        let accepted = s.gaussian_count();
        // Polar-method acceptance rate is π/4 ≈ 0.785.
        let rate = accepted / total_pairs;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "rate {rate}"
        );
        // Bin 0 dominates a gaussian magnitude histogram.
        assert!(s.q[0] > s.q[1] && s.q[1] > s.q[2]);
    }

    #[test]
    fn class_s_matches_published_reference() {
        let rt = rt();
        let res = run(&rt, 4, Class::S);
        assert!(res.verified(), "{:?}", res.verification);
        assert!(matches!(res.verification, Verification::Published(_)));
        assert!(res.mops > 0.0);
    }

    #[test]
    fn mca_backend_agrees_with_native() {
        let native = run_with_m(&rt(), 3, 17);
        let mca_rt = Runtime::with_backend(BackendKind::Mca).unwrap();
        let mca = run_with_m(&mca_rt, 3, 17);
        assert!(((native.sx - mca.sx) / native.sx).abs() < 1e-12);
        assert!(((native.sy - mca.sy) / native.sy).abs() < 1e-12);
        assert_eq!(native.q, mca.q);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn tiny_m_rejected() {
        run_with_m(&rt(), 1, 8);
    }
}
