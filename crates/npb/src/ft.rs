//! FT — the 3-D Fast Fourier Transform kernel.
//!
//! Solves a 3-D diffusion equation spectrally: the initial complex field is
//! forward-transformed once; each timed iteration multiplies the spectrum
//! by accumulated Gaussian decay factors (`evolve`) and inverse-transforms
//! it, and a 1024-point checksum of the result is accumulated — the NPB FT
//! protocol.
//!
//! The transform is a transposeless 3-D FFT: iterative radix-2
//! Cooley–Tukey along each axis, lines gathered into worker-local scratch
//! (contiguous for x, strided for y/z).  Line sets are workshared
//! statically; the three axis passes are barrier-separated.
//!
//! Verification is self-consistent (§6A discipline): `ifft(fft(x)) = x` to
//! near machine precision, Parseval's identity across the forward
//! transform, and parallel runs reproduce the serial checksums.

use romp::{Runtime, Schedule, Worker};

use crate::common::randlc::{randlc, NPB_A, NPB_SEED};
use crate::common::{Class, KernelResult, SyncSlice, Verification};

/// Per-class `(nx, ny, nz, niter)`.
pub fn params(class: Class) -> (usize, usize, usize, usize) {
    match class {
        Class::S => (64, 64, 64, 6),
        Class::W => (128, 128, 32, 6),
        Class::A => (256, 256, 128, 6),
    }
}

/// Diffusivity constant (`alpha` in ft.f).
const ALPHA: f64 = 1e-6;

/// A complex number; kept as a plain pair for tight loops.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    pub re: f64,
    pub im: f64,
}

impl C64 {
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    #[inline]
    fn add(self, o: C64) -> C64 {
        C64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    #[inline]
    fn scale(self, s: f64) -> C64 {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    #[inline]
    fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// In-place radix-2 DIT FFT on a power-of-two line.  `sign` is −1 for the
/// forward transform and +1 for the inverse (NPB's convention); no
/// normalisation on either direction.
pub fn fft_line(line: &mut [C64], sign: f64) {
    let n = line.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            line.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64 {
            re: ang.cos(),
            im: ang.sin(),
        };
        let mut i = 0;
        while i < n {
            let mut w = C64 { re: 1.0, im: 0.0 };
            for k in 0..len / 2 {
                let a = line[i + k];
                let b = line[i + k + len / 2].mul(w);
                line[i + k] = a.add(b);
                line[i + k + len / 2] = a.sub(b);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// The field: `nx × ny × nz`, x-fastest.
pub struct Field {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub data: Vec<C64>,
}

impl Field {
    fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Field {
            nx,
            ny,
            nz,
            data: vec![C64::default(); nx * ny * nz],
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.ny + j) * self.nx + i
    }

    /// Total points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// NPB `compute_initial_conditions`: fill with LCG deviate pairs, x-fastest.
pub fn initial_conditions(nx: usize, ny: usize, nz: usize) -> Field {
    let mut f = Field::new(nx, ny, nz);
    let mut seed = NPB_SEED;
    for c in f.data.iter_mut() {
        let re = randlc(&mut seed, NPB_A);
        let im = randlc(&mut seed, NPB_A);
        *c = C64 { re, im };
    }
    f
}

/// NPB `compute_index_map` + exponent table: the per-mode decay factor
/// `exp(−4·α·π²·(k̄²+l̄²+m̄²))`, where barred wavenumbers fold to
/// `(-n/2, n/2]`.
pub fn twiddle_table(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
    let fold = |i: usize, n: usize| -> f64 {
        let v = ((i + n / 2) % n) as i64 - (n / 2) as i64;
        v as f64
    };
    let ap = -4.0 * ALPHA * std::f64::consts::PI * std::f64::consts::PI;
    let mut t = vec![0.0; nx * ny * nz];
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let kk = fold(i, nx);
                let ll = fold(j, ny);
                let mm = fold(k, nz);
                t[(k * ny + j) * nx + i] = (ap * (kk * kk + ll * ll + mm * mm)).exp();
            }
        }
    }
    t
}

/// Parallel 3-D FFT in place: three barrier-separated axis passes.
fn fft3d(w: &Worker, f: &SyncSlice<C64>, nx: usize, ny: usize, nz: usize, sign: f64) {
    // x lines: contiguous; partition (j,k) pairs.
    let mut scratch = vec![C64::default(); nx.max(ny).max(nz)];
    w.for_chunks_nowait(
        0..(ny * nz) as u64,
        Schedule::Static { chunk: None },
        |lines| {
            for l in lines {
                let base = l as usize * nx;
                // SAFETY: line `l` is owned by this worker this phase.
                let line = unsafe { f.slice_mut(base, nx) };
                fft_line(line, sign);
            }
        },
    );
    w.barrier();
    // y lines: stride nx; partition (i,k) pairs.
    w.for_chunks_nowait(
        0..(nx * nz) as u64,
        Schedule::Static { chunk: None },
        |lines| {
            for l in lines {
                let (i, k) = (l as usize % nx, l as usize / nx);
                let base = k * nx * ny + i;
                // SAFETY: the (i,k) column is owned by this worker this phase.
                unsafe {
                    for (j, slot) in scratch[..ny].iter_mut().enumerate() {
                        *slot = f.get(base + j * nx);
                    }
                    fft_line(&mut scratch[..ny], sign);
                    for (j, &v) in scratch[..ny].iter().enumerate() {
                        f.set(base + j * nx, v);
                    }
                }
            }
        },
    );
    w.barrier();
    // z lines: stride nx*ny; partition (i,j) pairs.
    w.for_chunks_nowait(
        0..(nx * ny) as u64,
        Schedule::Static { chunk: None },
        |lines| {
            for l in lines {
                let base = l as usize;
                // SAFETY: the (i,j) pillar is owned by this worker this phase.
                unsafe {
                    for (k, slot) in scratch[..nz].iter_mut().enumerate() {
                        *slot = f.get(base + k * nx * ny);
                    }
                    fft_line(&mut scratch[..nz], sign);
                    for (k, &v) in scratch[..nz].iter().enumerate() {
                        f.set(base + k * nx * ny, v);
                    }
                }
            }
        },
    );
    w.barrier();
}

/// NPB `checksum`: 1024 strided samples, normalised by the grid size
/// (the published convention; the run path uses [`checksum_scaled`] on the
/// already-normalised field, which is numerically identical — see the
/// convention test).
#[cfg_attr(not(test), allow(dead_code))]
fn checksum(field: &Field) -> C64 {
    let ntotal = field.len() as f64;
    let mut s = C64::default();
    for j in 1..=1024usize {
        let q = (5 * j) % field.nx;
        let r = (3 * j) % field.ny;
        let t = j % field.nz;
        s = s.add(field.data[field.idx(q, r, t)]);
    }
    s.scale(1.0 / ntotal)
}

/// Outcome of a full FT run.
#[derive(Debug, Clone, PartialEq)]
pub struct FtOutcome {
    /// Checksum per iteration.
    pub sums: Vec<C64>,
    pub timed_s: f64,
}

/// Run the FT protocol with explicit dimensions.
pub fn spectral_evolution(
    rt: &Runtime,
    threads: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    niter: usize,
) -> FtOutcome {
    let twiddle = twiddle_table(nx, ny, nz);
    let mut u0 = initial_conditions(nx, ny, nz);
    let mut u1 = Field::new(nx, ny, nz);
    let sums = std::sync::Mutex::new(Vec::with_capacity(niter));

    let t0 = std::time::Instant::now();
    {
        let u0v = SyncSlice::new(u0.data.as_mut_slice());
        let u1v = SyncSlice::new(u1.data.as_mut_slice());
        rt.parallel(threads, |w| {
            // Forward transform of the initial field (timed, as in NPB).
            fft3d(w, &u0v, nx, ny, nz, -1.0);
            for _iter in 0..niter {
                // evolve: decay the spectrum in place and copy to u1.
                w.for_chunks_nowait(
                    0..(nx * ny * nz) as u64,
                    Schedule::Static { chunk: None },
                    |chunk| {
                        for idx in chunk {
                            let i = idx as usize;
                            // SAFETY: element-disjoint static partition.
                            unsafe {
                                let v = u0v.get(i).scale(twiddle[i]);
                                u0v.set(i, v);
                                u1v.set(i, v);
                            }
                        }
                    },
                );
                w.barrier();
                // Inverse transform into physical space.
                fft3d(w, &u1v, nx, ny, nz, 1.0);
                // Normalise (NPB folds 1/N into the checksum; doing it here
                // keeps u1 the physical field for the roundtrip tests).
                let scale = 1.0 / (nx * ny * nz) as f64;
                w.for_chunks_nowait(
                    0..(nx * ny * nz) as u64,
                    Schedule::Static { chunk: None },
                    |chunk| {
                        for idx in chunk {
                            // SAFETY: element-disjoint static partition.
                            unsafe { u1v.set(idx as usize, u1v.get(idx as usize).scale(scale)) };
                        }
                    },
                );
                w.barrier();
                w.single(|| {
                    // SAFETY: all workers are paused at single's barrier;
                    // reading the 1024 sample points through the view is
                    // race-free (and O(1) in the field size, unlike a
                    // whole-field copy, which would serialize the kernel).
                    let mut sum = C64::default();
                    for j in 1..=1024usize {
                        let q = (5 * j) % nx;
                        let r = (3 * j) % ny;
                        let t = j % nz;
                        sum = sum.add(unsafe { u1v.get((t * ny + r) * nx + q) });
                    }
                    sums.lock().unwrap().push(sum);
                });
            }
        });
    }
    FtOutcome {
        sums: sums.into_inner().unwrap(),
        timed_s: t0.elapsed().as_secs_f64(),
    }
}

/// Checksum without the extra 1/N (for an already-normalised field);
/// numerically identical to NPB's convention — see the convention test.
#[cfg_attr(not(test), allow(dead_code))]
fn checksum_scaled(field: &Field) -> C64 {
    let mut s = C64::default();
    for j in 1..=1024usize {
        let q = (5 * j) % field.nx;
        let r = (3 * j) % field.ny;
        let t = j % field.nz;
        s = s.add(field.data[field.idx(q, r, t)]);
    }
    s
}

/// Run FT for a class with self-consistent verification.
pub fn run(rt: &Runtime, threads: usize, class: Class) -> KernelResult {
    let (nx, ny, nz, niter) = params(class);
    let out = spectral_evolution(rt, threads, nx, ny, nz, niter);
    // Self-consistency: a serial run must reproduce the checksums.  It runs
    // on a private runtime so callers profiling `rt` (the Figure 4 harness)
    // only see the measured run, not the reference.
    let ref_rt = Runtime::with_backend(rt.backend_kind()).expect("reference runtime");
    let serial = spectral_evolution(&ref_rt, 1, nx, ny, nz, niter);
    let mut failures = Vec::new();
    for (i, (a, b)) in out.sums.iter().zip(&serial.sums).enumerate() {
        let denom = b.norm_sq().sqrt().max(1e-30);
        let err = a.sub(*b).norm_sq().sqrt() / denom;
        if err > 1e-9 {
            failures.push(format!("iter {i}: checksum rel err {err:.2e}"));
        }
    }
    // And the checksums must evolve (the spectrum decays every iteration).
    for w in out.sums.windows(2) {
        if w[0] == w[1] {
            failures.push("checksum did not evolve between iterations".into());
        }
    }
    let verification = if failures.is_empty() {
        Verification::SelfConsistent(format!(
            "{} iterations; checksum[0]=({:.10e}, {:.10e}); serial-parallel agreement",
            niter, out.sums[0].re, out.sums[0].im
        ))
    } else {
        Verification::Failed(failures.join("; "))
    };
    // NPB's FT op count: ~14.8 flops per point per 1-D transform pass plus
    // evolve; the standard estimate used in its reports.
    let ntotal = (nx * ny * nz) as f64;
    let ops = niter as f64
        * ntotal
        * (14.8 * ((nx as f64).log2() + (ny as f64).log2() + (nz as f64).log2()) / 3.0 + 5.0);
    KernelResult {
        name: "FT",
        class,
        threads,
        wall_s: out.timed_s,
        mops: ops / out.timed_s / 1e6,
        verification,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    fn rt() -> Runtime {
        Runtime::with_backend(BackendKind::Native).unwrap()
    }

    #[test]
    fn fft_line_matches_dft_small() {
        // Compare against a naive DFT on length 8.
        let mut line: Vec<C64> = (0..8)
            .map(|i| C64 {
                re: (i as f64 * 0.7).sin(),
                im: (i as f64 * 1.3).cos(),
            })
            .collect();
        let orig = line.clone();
        fft_line(&mut line, -1.0);
        for (k, got) in line.iter().enumerate() {
            let mut want = C64::default();
            for (n, &x) in orig.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * n) as f64 / 8.0;
                want = want.add(x.mul(C64 {
                    re: ang.cos(),
                    im: ang.sin(),
                }));
            }
            assert!((got.re - want.re).abs() < 1e-12, "k={k}");
            assert!((got.im - want.im).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_roundtrip_restores_input() {
        let mut line: Vec<C64> = (0..64)
            .map(|i| C64 {
                re: (i as f64).sin(),
                im: (i as f64 * 0.5).cos(),
            })
            .collect();
        let orig = line.clone();
        fft_line(&mut line, -1.0);
        fft_line(&mut line, 1.0);
        for (a, b) in line.iter().zip(&orig) {
            assert!((a.re / 64.0 - b.re).abs() < 1e-12);
            assert!((a.im / 64.0 - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds_for_forward_transform() {
        let mut line: Vec<C64> = (0..128)
            .map(|i| C64 {
                re: (i as f64 * 0.3).sin(),
                im: 0.0,
            })
            .collect();
        let time_energy: f64 = line.iter().map(|c| c.norm_sq()).sum();
        fft_line(&mut line, -1.0);
        let freq_energy: f64 = line.iter().map(|c| c.norm_sq()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn twiddle_decay_bounded_and_symmetric() {
        let t = twiddle_table(16, 16, 8);
        assert!(t.iter().all(|&v| v > 0.0 && v <= 1.0));
        assert_eq!(t[0], 1.0, "DC mode does not decay");
        // Mode k and n-k decay identically.
        assert!((t[1] - t[15]).abs() < 1e-15);
    }

    #[test]
    fn parallel_checksums_match_serial() {
        let rt = rt();
        let serial = spectral_evolution(&rt, 1, 32, 16, 8, 3);
        for threads in [2, 4] {
            let par = spectral_evolution(&rt, threads, 32, 16, 8, 3);
            for (a, b) in par.sums.iter().zip(&serial.sums) {
                assert!((a.re - b.re).abs() < 1e-10, "threads={threads}");
                assert!((a.im - b.im).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mca_backend_agrees() {
        let a = spectral_evolution(&rt(), 3, 16, 16, 16, 2);
        let b = spectral_evolution(
            &Runtime::with_backend(BackendKind::Mca).unwrap(),
            3,
            16,
            16,
            16,
            2,
        );
        assert_eq!(a.sums.len(), b.sums.len());
        for (x, y) in a.sums.iter().zip(&b.sums) {
            assert!((x.re - y.re).abs() < 1e-10 && (x.im - y.im).abs() < 1e-10);
        }
    }

    #[test]
    fn class_s_runs_verified() {
        let res = run(&rt(), 4, Class::S);
        assert!(res.verified(), "{:?}", res.verification);
        assert!(matches!(res.verification, Verification::SelfConsistent(_)));
    }

    #[test]
    fn checksum_uses_unnormalised_convention_consistently() {
        let f = initial_conditions(8, 8, 8);
        let a = checksum(&f);
        let mut g = Field {
            nx: 8,
            ny: 8,
            nz: 8,
            data: f.data.clone(),
        };
        let scale = 1.0 / g.len() as f64;
        for c in g.data.iter_mut() {
            *c = c.scale(scale);
        }
        let b = checksum_scaled(&g);
        assert!((a.re - b.re).abs() < 1e-15 && (a.im - b.im).abs() < 1e-15);
    }
}
