//! CG — the Conjugate Gradient kernel.
//!
//! Estimates the smallest eigenvalue of a large sparse symmetric
//! positive-definite matrix by inverse power iteration, each step solving
//! `A z = x` with 25 unpreconditioned conjugate-gradient iterations.  The
//! matrix is NPB's synthetic one: a sum of `n` rank-one outer products of
//! sparse random vectors with geometrically decaying weights plus a shifted
//! diagonal, generated with the exact `makea`/`sprnvc`/`vecset` procedure
//! (and random stream) of the NPB sources so the published ζ verification
//! values apply.
//!
//! Parallelisation follows the NPB OpenMP version: one parallel region per
//! power iteration batch; rows of the mat-vec are statically partitioned;
//! dot products go through the runtime's reduction; vector updates write
//! disjoint static blocks (via [`SyncSlice`]); an explicit barrier publishes
//! `p` before each mat-vec reads it across ranges.

use romp::{ReduceOp, Runtime, Worker};
use std::collections::BTreeMap;

use crate::common::randlc::{randlc, NPB_A, NPB_SEED};
use crate::common::{Class, KernelResult, SyncSlice, Verification};

/// Maximum CG iterations per solve (NPB `cgitmax`).
const CGITMAX: usize = 25;
/// Eigenvalue bound used in matrix generation (NPB `RCOND`).
const RCOND: f64 = 0.1;

/// Per-class parameters: (na, nonzer, niter, shift, zeta_verify).
pub fn params(class: Class) -> (usize, usize, usize, f64, f64) {
    match class {
        Class::S => (1400, 7, 15, 10.0, 8.597_177_507_864_8),
        Class::W => (7000, 8, 15, 12.0, 10.362_595_087_124),
        Class::A => (14000, 11, 15, 20.0, 17.130_235_054_029),
    }
}

/// Compressed sparse row matrix.
pub struct Csr {
    pub n: usize,
    pub rowstr: Vec<usize>,
    pub colidx: Vec<u32>,
    pub a: Vec<f64>,
}

impl Csr {
    /// `Σ a[row,col]·x[col]` for one row.
    #[inline]
    fn row_dot(&self, row: usize, x: &[f64]) -> f64 {
        let mut sum = 0.0;
        for k in self.rowstr[row]..self.rowstr[row + 1] {
            sum += self.a[k] * x[self.colidx[k] as usize];
        }
        sum
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.a.len()
    }
}

/// NPB `sprnvc`: draw a sparse vector of `nz` distinct random locations
/// (1-based in `1..=n`) with random values, consuming the shared stream.
fn sprnvc(n: usize, nz: usize, tran: &mut f64) -> Vec<(usize, f64)> {
    let mut nn1 = 1usize;
    while nn1 < n {
        nn1 *= 2;
    }
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(nz);
    while out.len() < nz {
        let vecelt = randlc(tran, NPB_A);
        let vecloc = randlc(tran, NPB_A);
        let i = (vecloc * nn1 as f64) as usize + 1;
        if i > n {
            continue;
        }
        if !out.iter().any(|&(j, _)| j == i) {
            out.push((i, vecelt));
        }
    }
    out
}

/// NPB `vecset`: force element `i` (1-based) to `val`.
fn vecset(v: &mut Vec<(usize, f64)>, i: usize, val: f64) {
    for e in v.iter_mut() {
        if e.0 == i {
            e.1 = val;
            return;
        }
    }
    v.push((i, val));
}

/// NPB `makea`: generate the class matrix.  Serial, untimed (as in NPB).
pub fn makea(n: usize, nonzer: usize, shift: f64) -> Csr {
    let mut tran = NPB_SEED;
    // NPB burns one deviate initialising zeta before makea.
    let _zeta = randlc(&mut tran, NPB_A);

    // Outer-product accumulation, exactly NPB's loop.
    let mut rows: Vec<BTreeMap<u32, f64>> = vec![BTreeMap::new(); n];
    let ratio = RCOND.powf(1.0 / n as f64);
    let mut size = 1.0;
    for iouter in 0..n {
        let mut v = sprnvc(n, nonzer, &mut tran);
        vecset(&mut v, iouter + 1, 0.5);
        for &(jr, jv) in &v {
            let j = jr - 1; // row, 0-based
            let scale = size * jv;
            for &(cr, cv) in &v {
                let jcol = cr - 1;
                let mut va = cv * scale;
                if jcol == j && j == iouter {
                    // Bound the smallest eigenvalue from below by RCOND and
                    // apply the spectral shift.
                    va += RCOND - shift;
                }
                *rows[j].entry(jcol as u32).or_insert(0.0) += va;
            }
        }
        size *= ratio;
    }
    // Assemble CSR (columns sorted by the BTreeMap).
    let mut rowstr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::new();
    let mut a = Vec::new();
    rowstr.push(0);
    for row in rows {
        for (c, v) in row {
            colidx.push(c);
            a.push(v);
        }
        rowstr.push(colidx.len());
    }
    Csr {
        n,
        rowstr,
        colidx,
        a,
    }
}

/// Per-worker static row range.
fn my_rows(w: &Worker, n: usize) -> std::ops::Range<usize> {
    let (s, e) = romp::schedule::static_block(n as u64, w.num_threads(), w.thread_num());
    s as usize..e as usize
}

/// Block-local dot product folded through the team reduction.
fn pdot(w: &Worker, a: &[f64], b: &[f64], range: &std::ops::Range<usize>) -> f64 {
    let mut local = 0.0;
    for i in range.clone() {
        local += a[i] * b[i];
    }
    w.reduce_f64(local, ReduceOp::Sum)
}

/// Outcome of a full CG power-iteration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOutcome {
    pub zeta: f64,
    pub rnorm: f64,
}

/// Run the benchmark body: one untimed warm-up iteration, reset `x`, then
/// `niter` iterations.  Exposed for tests with custom sizes.
pub fn power_iterations(
    rt: &Runtime,
    threads: usize,
    mat: &Csr,
    niter: usize,
    shift: f64,
) -> CgOutcome {
    let n = mat.n;
    let mut x = vec![1.0f64; n];
    let mut z = vec![0.0f64; n];
    let mut p = vec![0.0f64; n];
    let mut q = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    let out = std::sync::Mutex::new(CgOutcome {
        zeta: 0.0,
        rnorm: 0.0,
    });

    run_region(
        rt, threads, mat, 1, shift, &mut x, &mut z, &mut p, &mut q, &mut r, &out,
    );
    x.iter_mut().for_each(|v| *v = 1.0);
    run_region(
        rt, threads, mat, niter, shift, &mut x, &mut z, &mut p, &mut q, &mut r, &out,
    );
    out.into_inner().unwrap()
}

#[allow(clippy::too_many_arguments)]
fn run_region(
    rt: &Runtime,
    threads: usize,
    mat: &Csr,
    iters: usize,
    shift: f64,
    x: &mut [f64],
    z: &mut [f64],
    p: &mut [f64],
    q: &mut [f64],
    r: &mut [f64],
    out: &std::sync::Mutex<CgOutcome>,
) {
    let n = mat.n;
    let xs = SyncSlice::new(x);
    let zs = SyncSlice::new(z);
    let ps = SyncSlice::new(p);
    let qs = SyncSlice::new(q);
    let rs = SyncSlice::new(r);
    rt.parallel(threads, |w| {
        let rows = my_rows(w, n);
        // SAFETY (whole region): all slice writes below are confined to
        // `rows` (disjoint static blocks); cross-range reads only happen
        // after a reduction/barrier published the writes — the SyncSlice
        // module contract.
        unsafe {
            for _ in 0..iters {
                // r = x, p = r, z = q = 0 over my rows.
                for i in rows.clone() {
                    let xi = xs.get(i);
                    rs.set(i, xi);
                    ps.set(i, xi);
                    zs.set(i, 0.0);
                    qs.set(i, 0.0);
                }
                // The reduction's barriers publish p before the mat-vec.
                let r_all = rs.slice(0, n);
                let mut rho = pdot(w, r_all, r_all, &rows);
                for _cgit in 0..CGITMAX {
                    // q = A p (cross-range reads of p: published above /
                    // by the barrier at the bottom of this loop).
                    let p_all = ps.slice(0, n);
                    for i in rows.clone() {
                        qs.set(i, mat.row_dot(i, p_all));
                    }
                    let d = pdot(w, ps.slice(0, n), qs.slice(0, n), &rows);
                    let alpha = rho / d;
                    for i in rows.clone() {
                        zs.set(i, zs.get(i) + alpha * ps.get(i));
                        rs.set(i, rs.get(i) - alpha * qs.get(i));
                    }
                    let r_all = rs.slice(0, n);
                    let rho_new = pdot(w, r_all, r_all, &rows);
                    let beta = rho_new / rho;
                    rho = rho_new;
                    for i in rows.clone() {
                        ps.set(i, rs.get(i) + beta * ps.get(i));
                    }
                    // Publish p for the next mat-vec.
                    w.barrier();
                }
                // rnorm = ||x - A z|| (z was published by the final barrier).
                let z_all = zs.slice(0, n);
                let mut partial = 0.0;
                for i in rows.clone() {
                    let d = xs.get(i) - mat.row_dot(i, z_all);
                    partial += d * d;
                }
                let rnorm = w.reduce_f64(partial, ReduceOp::Sum).sqrt();
                // zeta and the normalisation of x.
                let tnorm1 = pdot(w, xs.slice(0, n), zs.slice(0, n), &rows);
                let tnorm2 = {
                    let z_all = zs.slice(0, n);
                    let mut local = 0.0;
                    for i in rows.clone() {
                        local += z_all[i] * z_all[i];
                    }
                    1.0 / w.reduce_f64(local, ReduceOp::Sum).sqrt()
                };
                let zeta = shift + 1.0 / tnorm1;
                for i in rows.clone() {
                    xs.set(i, tnorm2 * zs.get(i));
                }
                // Publish x for the next power iteration's r = x.
                w.barrier();
                if w.is_master() {
                    *out.lock().unwrap() = CgOutcome { zeta, rnorm };
                }
            }
        }
    });
}

/// Run CG for a class and verify ζ against the published NPB value.
pub fn run(rt: &Runtime, threads: usize, class: Class) -> KernelResult {
    let (na, nonzer, niter, shift, zeta_ref) = params(class);
    let mat = makea(na, nonzer, shift);
    let t0 = std::time::Instant::now();
    let outcome = power_iterations(rt, threads, &mat, niter, shift);
    let wall_s = t0.elapsed().as_secs_f64();
    let err = (outcome.zeta - zeta_ref).abs();
    let verification = if err <= 1e-10 {
        Verification::Published(format!(
            "zeta={:.13} matches NPB reference {:.13} (err {:.2e})",
            outcome.zeta, zeta_ref, err
        ))
    } else {
        Verification::Failed(format!(
            "zeta={:.13}, want {:.13} (err {:.2e})",
            outcome.zeta, zeta_ref, err
        ))
    };
    // NPB's CG floating-op estimate for the timed iterations.
    let ops = 2.0
        * niter as f64
        * na as f64
        * (3.0
            + (nonzer * (nonzer + 1)) as f64
            + 25.0 * (5.0 + (nonzer * (nonzer + 1)) as f64)
            + 3.0);
    KernelResult {
        name: "CG",
        class,
        threads,
        wall_s,
        mops: ops / wall_s / 1e6,
        verification,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    fn rt() -> Runtime {
        Runtime::with_backend(BackendKind::Native).unwrap()
    }

    #[test]
    fn makea_shape_is_sane() {
        let (na, nonzer, _, shift, _) = params(Class::S);
        let m = makea(na, nonzer, shift);
        assert_eq!(m.n, na);
        assert_eq!(m.rowstr.len(), na + 1);
        assert_eq!(*m.rowstr.last().unwrap(), m.nnz());
        for i in 0..na {
            assert!(m.rowstr[i + 1] > m.rowstr[i], "empty row {i}");
            let cols = &m.colidx[m.rowstr[i]..m.rowstr[i + 1]];
            assert!(cols.contains(&(i as u32)), "row {i} missing diagonal");
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} not sorted");
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let (na, nonzer, _, shift, _) = params(Class::S);
        let m = makea(na, nonzer, shift);
        for i in (0..na).step_by(97) {
            for k in m.rowstr[i]..m.rowstr[i + 1] {
                let j = m.colidx[k] as usize;
                let aij = m.a[k];
                let aji = (m.rowstr[j]..m.rowstr[j + 1])
                    .find(|&kk| m.colidx[kk] as usize == i)
                    .map(|kk| m.a[kk])
                    .unwrap_or_else(|| panic!("a[{j},{i}] missing"));
                assert!((aij - aji).abs() <= 1e-12 * aij.abs().max(1.0));
            }
        }
    }

    #[test]
    fn class_s_matches_published_zeta() {
        let res = run(&rt(), 4, Class::S);
        assert!(res.verified(), "{:?}", res.verification);
        assert!(matches!(res.verification, Verification::Published(_)));
    }

    #[test]
    fn team_sizes_agree() {
        let (na, nonzer, _, shift, _) = params(Class::S);
        let m = makea(na, nonzer, shift);
        let rt = rt();
        let serial = power_iterations(&rt, 1, &m, 5, shift);
        for threads in [2, 6] {
            let par = power_iterations(&rt, threads, &m, 5, shift);
            assert!(
                (par.zeta - serial.zeta).abs() < 1e-11,
                "threads={threads}: {} vs {}",
                par.zeta,
                serial.zeta
            );
        }
    }

    #[test]
    fn mca_backend_agrees() {
        let (na, nonzer, _, shift, _) = params(Class::S);
        let m = makea(na, nonzer, shift);
        let a = power_iterations(&rt(), 3, &m, 3, shift);
        let b = power_iterations(
            &Runtime::with_backend(BackendKind::Mca).unwrap(),
            3,
            &m,
            3,
            shift,
        );
        assert!((a.zeta - b.zeta).abs() < 1e-11);
    }

    #[test]
    fn residual_is_small_after_convergence() {
        let (na, nonzer, niter, shift, _) = params(Class::S);
        let m = makea(na, nonzer, shift);
        let out = power_iterations(&rt(), 2, &m, niter, shift);
        assert!(out.rnorm < 1e-10, "rnorm={}", out.rnorm);
    }
}
