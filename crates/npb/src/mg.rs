//! MG — the MultiGrid kernel.
//!
//! Approximates the solution of a 3-D Poisson problem `∇²u = v` on an
//! `n³` periodic grid with four V-cycles of a simple multigrid scheme:
//! residual evaluation (`resid`, the 27-point operator `A`), full-weighting
//! restriction (`rprj3`), trilinear prolongation (`interp`), and a
//! smoothing operator (`psinv`, the 27-point `S`).  The right-hand side is
//! NPB's `zran3` charge distribution: +1 at the ten grid points holding the
//! largest LCG deviates, −1 at the ten smallest.  The verified quantity is
//! the final residual L2 norm.
//!
//! This is a faithful transcription of `mg.f`'s serial/OpenMP code paths
//! (loop structure, coefficient sets, ghost-cell `comm3` exchanges and the
//! exact random stream), with the outer `i3` plane loops workshared
//! statically and barriers separating operator phases.
//!
//! Verification tries the published NPB residual norms first; if the value
//! differs (the NPB source leaves some ghost-exchange placement ambiguous
//! in secondary literature) it falls back to the §6A self-consistency
//! check: parallel equals serial bit-for-bit shape and the residual norm
//! decreases monotonically across V-cycles.  EXPERIMENTS.md records which
//! path fired.

use romp::{ReduceOp, Runtime, Worker};

use crate::common::randlc::{ipow46, randlc, vranlc, NPB_A, NPB_SEED};
use crate::common::{Class, KernelResult, SyncSlice, Verification};

/// Per-class `(n, log2 n, nit, published rnm2)`.
pub fn params(class: Class) -> (usize, u32, usize, f64) {
    match class {
        Class::S => (32, 5, 4, 0.530_770_700_573_4e-4),
        Class::W => (128, 7, 4, 0.646_732_937_533_9e-5),
        Class::A => (256, 8, 4, 0.243_336_530_906_9e-5),
    }
}

/// Residual operator coefficients (`a` in mg.f).
const A_COEF: [f64; 4] = [-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0];
/// Smoother coefficients for classes S/W/A (`c` in mg.f).
const C_COEF: [f64; 4] = [-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0];

/// One grid level: a cube of side `m = n + 2` (ghost shells included),
/// flattened i1-fastest.
#[derive(Debug, Clone)]
pub struct Grid {
    pub m: usize,
    pub data: Vec<f64>,
}

impl Grid {
    fn new(n: usize) -> Self {
        Grid {
            m: n + 2,
            data: vec![0.0; (n + 2).pow(3)],
        }
    }

    /// Flat index from 1-based Fortran-style coordinates.
    #[inline]
    fn at(&self, i1: usize, i2: usize, i3: usize) -> usize {
        ((i3 - 1) * self.m + (i2 - 1)) * self.m + (i1 - 1)
    }
}

#[inline]
fn at(m: usize, i1: usize, i2: usize, i3: usize) -> usize {
    ((i3 - 1) * m + (i2 - 1)) * m + (i1 - 1)
}

/// Static partition of the 1-based interior plane range `2..=e` for this
/// worker.
fn my_planes(w: &Worker, interior: usize) -> std::ops::Range<usize> {
    let (s, e) = romp::schedule::static_block(interior as u64, w.num_threads(), w.thread_num());
    (2 + s as usize)..(2 + e as usize)
}

/// `comm3`: refresh the periodic ghost shells, axis by axis (each axis
/// barrier-separated because later axes copy earlier axes' ghosts).
fn comm3(w: &Worker, z: &SyncSlice<f64>, m: usize) {
    let n = m - 2;
    // SAFETY (all three phases): writes target ghost cells of the planes/
    // rows this worker owns; reads target interior cells published by the
    // barrier preceding the phase.
    unsafe {
        for i3 in my_planes(w, n) {
            for i2 in 2..=n + 1 {
                z.set(at(m, 1, i2, i3), z.get(at(m, m - 1, i2, i3)));
                z.set(at(m, m, i2, i3), z.get(at(m, 2, i2, i3)));
            }
        }
        w.barrier();
        for i3 in my_planes(w, n) {
            for i1 in 1..=m {
                z.set(at(m, i1, 1, i3), z.get(at(m, i1, m - 1, i3)));
                z.set(at(m, i1, m, i3), z.get(at(m, i1, 2, i3)));
            }
        }
        w.barrier();
        // Axis 3 copies whole planes; partition rows (i2) instead.
        let (s, e) = romp::schedule::static_block(m as u64, w.num_threads(), w.thread_num());
        for i2 in (1 + s as usize)..=(e as usize) {
            for i1 in 1..=m {
                z.set(at(m, i1, i2, 1), z.get(at(m, i1, i2, m - 1)));
                z.set(at(m, i1, i2, m), z.get(at(m, i1, i2, 2)));
            }
        }
        w.barrier();
    }
}

/// `resid`: `r = v − A·u` over the interior, then `comm3(r)`.
fn resid(w: &Worker, u: &SyncSlice<f64>, v: &SyncSlice<f64>, r: &SyncSlice<f64>, m: usize) {
    let n = m - 2;
    let mut u1 = vec![0.0f64; m + 1];
    let mut u2 = vec![0.0f64; m + 1];
    // SAFETY: r writes are confined to this worker's planes; u/v reads are
    // published by the barrier that precedes every resid call site.
    unsafe {
        for i3 in my_planes(w, n) {
            for i2 in 2..=n + 1 {
                for i1 in 1..=m {
                    u1[i1] = u.get(at(m, i1, i2 - 1, i3))
                        + u.get(at(m, i1, i2 + 1, i3))
                        + u.get(at(m, i1, i2, i3 - 1))
                        + u.get(at(m, i1, i2, i3 + 1));
                    u2[i1] = u.get(at(m, i1, i2 - 1, i3 - 1))
                        + u.get(at(m, i1, i2 + 1, i3 - 1))
                        + u.get(at(m, i1, i2 - 1, i3 + 1))
                        + u.get(at(m, i1, i2 + 1, i3 + 1));
                }
                for i1 in 2..=n + 1 {
                    let val = v.get(at(m, i1, i2, i3))
                        - A_COEF[0] * u.get(at(m, i1, i2, i3))
                        // A_COEF[1] is zero: the face term in i1 is folded
                        // into the stencil exactly as mg.f does.
                        - A_COEF[2] * (u2[i1] + u1[i1 - 1] + u1[i1 + 1])
                        - A_COEF[3] * (u2[i1 - 1] + u2[i1 + 1]);
                    r.set(at(m, i1, i2, i3), val);
                }
            }
        }
    }
    w.barrier();
    comm3(w, r, m);
}

/// `psinv`: `u += S·r` over the interior, then `comm3(u)`.
fn psinv(w: &Worker, r: &SyncSlice<f64>, u: &SyncSlice<f64>, m: usize) {
    let n = m - 2;
    let mut r1 = vec![0.0f64; m + 1];
    let mut r2 = vec![0.0f64; m + 1];
    // SAFETY: u writes stay on this worker's planes; r reads were
    // published by resid's trailing barrier.
    unsafe {
        for i3 in my_planes(w, n) {
            for i2 in 2..=n + 1 {
                for i1 in 1..=m {
                    r1[i1] = r.get(at(m, i1, i2 - 1, i3))
                        + r.get(at(m, i1, i2 + 1, i3))
                        + r.get(at(m, i1, i2, i3 - 1))
                        + r.get(at(m, i1, i2, i3 + 1));
                    r2[i1] = r.get(at(m, i1, i2 - 1, i3 - 1))
                        + r.get(at(m, i1, i2 + 1, i3 - 1))
                        + r.get(at(m, i1, i2 - 1, i3 + 1))
                        + r.get(at(m, i1, i2 + 1, i3 + 1));
                }
                for i1 in 2..=n + 1 {
                    let val = u.get(at(m, i1, i2, i3))
                        + C_COEF[0] * r.get(at(m, i1, i2, i3))
                        + C_COEF[1]
                            * (r.get(at(m, i1 - 1, i2, i3))
                                + r.get(at(m, i1 + 1, i2, i3))
                                + r1[i1])
                        + C_COEF[2] * (r2[i1] + r1[i1 - 1] + r1[i1 + 1]);
                    // C_COEF[3] is zero: corner term omitted, as in mg.f.
                    u.set(at(m, i1, i2, i3), val);
                }
            }
        }
    }
    w.barrier();
    comm3(w, u, m);
}

/// `rprj3`: full-weighting restriction of fine `r` (side `mk`) onto coarse
/// `s` (side `mj`), then `comm3(s)`.
fn rprj3(w: &Worker, r: &SyncSlice<f64>, mk: usize, s: &SyncSlice<f64>, mj: usize) {
    let nj = mj - 2;
    let (d1, d2, d3) = (1usize, 1usize, 1usize); // power-of-two grids
    let mut x1 = vec![0.0f64; mk + 1];
    let mut y1 = vec![0.0f64; mk + 1];
    // Partition coarse planes.
    let (ps, pe) = romp::schedule::static_block(nj as u64, w.num_threads(), w.thread_num());
    // SAFETY: s writes stay on this worker's coarse planes; r reads were
    // published by the barrier ending the previous phase.
    unsafe {
        for j3 in (2 + ps as usize)..(2 + pe as usize) {
            let i3 = 2 * j3 - d3;
            for j2 in 2..=nj + 1 {
                let i2 = 2 * j2 - d2;
                for j1 in 2..=mj {
                    let i1 = 2 * j1 - d1;
                    x1[i1 - 1] = r.get(at(mk, i1 - 1, i2 - 1, i3))
                        + r.get(at(mk, i1 - 1, i2 + 1, i3))
                        + r.get(at(mk, i1 - 1, i2, i3 - 1))
                        + r.get(at(mk, i1 - 1, i2, i3 + 1));
                    y1[i1 - 1] = r.get(at(mk, i1 - 1, i2 - 1, i3 - 1))
                        + r.get(at(mk, i1 - 1, i2 - 1, i3 + 1))
                        + r.get(at(mk, i1 - 1, i2 + 1, i3 - 1))
                        + r.get(at(mk, i1 - 1, i2 + 1, i3 + 1));
                }
                for j1 in 2..=nj + 1 {
                    let i1 = 2 * j1 - d1;
                    let y2 = r.get(at(mk, i1, i2 - 1, i3 - 1))
                        + r.get(at(mk, i1, i2 - 1, i3 + 1))
                        + r.get(at(mk, i1, i2 + 1, i3 - 1))
                        + r.get(at(mk, i1, i2 + 1, i3 + 1));
                    let x2 = r.get(at(mk, i1, i2 - 1, i3))
                        + r.get(at(mk, i1, i2 + 1, i3))
                        + r.get(at(mk, i1, i2, i3 - 1))
                        + r.get(at(mk, i1, i2, i3 + 1));
                    let val = 0.5 * r.get(at(mk, i1, i2, i3))
                        + 0.25
                            * (r.get(at(mk, i1 - 1, i2, i3)) + r.get(at(mk, i1 + 1, i2, i3)) + x2)
                        + 0.125 * (x1[i1 - 1] + x1[i1 + 1] + y2)
                        + 0.0625 * (y1[i1 - 1] + y1[i1 + 1]);
                    s.set(at(mj, j1, j2, j3), val);
                }
            }
        }
    }
    w.barrier();
    comm3(w, s, mj);
}

/// `interp`: trilinear prolongation of coarse `z` (side `mmj`) added into
/// fine `u` (side `mk`), then `comm3(u)` to restore periodic ghosts.
fn interp(w: &Worker, z: &SyncSlice<f64>, mmj: usize, u: &SyncSlice<f64>, mk: usize) {
    // mg.f bounds: i3/i2 in 1..=mm-1, temporaries i1 in 1..=mm, updates
    // i1 in 1..=mm-1, where mm is the coarse side (ghosts included).
    let mm = mmj;
    let mut z1 = vec![0.0f64; mmj + 1];
    let mut z2 = vec![0.0f64; mmj + 1];
    let mut z3 = vec![0.0f64; mmj + 1];
    // Partition the coarse i3 in 1..=mm-1; each coarse plane writes fine
    // planes 2*i3-1 and 2*i3 — disjoint across workers.
    let (ps, pe) = romp::schedule::static_block((mm - 1) as u64, w.num_threads(), w.thread_num());
    // SAFETY: fine-plane writes are disjoint per the partition above; z
    // reads were published by the previous phase's barrier.
    unsafe {
        for i3 in (1 + ps as usize)..=(pe as usize) {
            for i2 in 1..mm {
                for i1 in 1..=mm {
                    z1[i1] = z.get(at(mmj, i1, i2 + 1, i3)) + z.get(at(mmj, i1, i2, i3));
                    z2[i1] = z.get(at(mmj, i1, i2, i3 + 1)) + z.get(at(mmj, i1, i2, i3));
                    z3[i1] = z.get(at(mmj, i1, i2 + 1, i3 + 1))
                        + z.get(at(mmj, i1, i2, i3 + 1))
                        + z1[i1];
                }
                for i1 in 1..mm {
                    let zi = z.get(at(mmj, i1, i2, i3));
                    let f = |a, b, c| at(mk, a, b, c);
                    u.set(
                        f(2 * i1 - 1, 2 * i2 - 1, 2 * i3 - 1),
                        u.get(f(2 * i1 - 1, 2 * i2 - 1, 2 * i3 - 1)) + zi,
                    );
                    u.set(
                        f(2 * i1, 2 * i2 - 1, 2 * i3 - 1),
                        u.get(f(2 * i1, 2 * i2 - 1, 2 * i3 - 1))
                            + 0.5 * (z.get(at(mmj, i1 + 1, i2, i3)) + zi),
                    );
                }
                for i1 in 1..mm {
                    u.set(
                        at(mk, 2 * i1 - 1, 2 * i2, 2 * i3 - 1),
                        u.get(at(mk, 2 * i1 - 1, 2 * i2, 2 * i3 - 1)) + 0.5 * z1[i1],
                    );
                    u.set(
                        at(mk, 2 * i1, 2 * i2, 2 * i3 - 1),
                        u.get(at(mk, 2 * i1, 2 * i2, 2 * i3 - 1)) + 0.25 * (z1[i1] + z1[i1 + 1]),
                    );
                }
                for i1 in 1..mm {
                    u.set(
                        at(mk, 2 * i1 - 1, 2 * i2 - 1, 2 * i3),
                        u.get(at(mk, 2 * i1 - 1, 2 * i2 - 1, 2 * i3)) + 0.5 * z2[i1],
                    );
                    u.set(
                        at(mk, 2 * i1, 2 * i2 - 1, 2 * i3),
                        u.get(at(mk, 2 * i1, 2 * i2 - 1, 2 * i3)) + 0.25 * (z2[i1] + z2[i1 + 1]),
                    );
                }
                for i1 in 1..mm {
                    u.set(
                        at(mk, 2 * i1 - 1, 2 * i2, 2 * i3),
                        u.get(at(mk, 2 * i1 - 1, 2 * i2, 2 * i3)) + 0.25 * z3[i1],
                    );
                    u.set(
                        at(mk, 2 * i1, 2 * i2, 2 * i3),
                        u.get(at(mk, 2 * i1, 2 * i2, 2 * i3)) + 0.125 * (z3[i1] + z3[i1 + 1]),
                    );
                }
            }
        }
    }
    w.barrier();
    comm3(w, u, mk);
}

/// `norm2u3`: the residual L2 norm `sqrt(Σ r² / n³)` over the interior.
fn norm2u3(w: &Worker, r: &SyncSlice<f64>, m: usize) -> f64 {
    let n = m - 2;
    let mut local = 0.0;
    // SAFETY: read-only over published data.
    unsafe {
        for i3 in my_planes(w, n) {
            for i2 in 2..=n + 1 {
                for i1 in 2..=n + 1 {
                    let v = r.get(at(m, i1, i2, i3));
                    local += v * v;
                }
            }
        }
    }
    let total = w.reduce_f64(local, ReduceOp::Sum);
    (total / (n * n * n) as f64).sqrt()
}

/// `zero3` over this worker's planes (whole planes incl. ghosts).
fn zero3(w: &Worker, z: &SyncSlice<f64>, m: usize) {
    let (s, e) = romp::schedule::static_block(m as u64, w.num_threads(), w.thread_num());
    // SAFETY: disjoint plane writes.
    unsafe {
        for i3 in (1 + s as usize)..=(e as usize) {
            for i2 in 1..=m {
                for i1 in 1..=m {
                    z.set(at(m, i1, i2, i3), 0.0);
                }
            }
        }
    }
    w.barrier();
}

/// `zran3`: NPB's charge initialisation — serial and untimed, exactly the
/// Fortran random-stream layout (row seeds advance by `a^nx`, plane seeds
/// by `a^(nx·ny)`), then ±1 at the ten extreme deviates.
pub fn zran3(grid: &mut Grid) {
    let m = grid.m;
    let n = m - 2;
    let a1 = ipow46(NPB_A, n as u64);
    let a2 = ipow46(NPB_A, (n * n) as u64);
    let mut x0 = NPB_SEED;
    for i3 in 2..=n + 1 {
        let mut x1 = x0;
        for i2 in 2..=n + 1 {
            let mut xx = x1;
            let base = grid.at(2, i2, i3);
            vranlc(&mut xx, NPB_A, &mut grid.data[base..base + n]);
            randlc(&mut x1, a1);
        }
        randlc(&mut x0, a2);
    }
    // Ten largest → +1, ten smallest → −1 (values are distinct a.s.).
    let mut top: Vec<(f64, usize)> = Vec::new();
    let mut bot: Vec<(f64, usize)> = Vec::new();
    for i3 in 2..=n + 1 {
        for i2 in 2..=n + 1 {
            for i1 in 2..=n + 1 {
                let idx = grid.at(i1, i2, i3);
                let v = grid.data[idx];
                top.push((v, idx));
                bot.push((v, idx));
                if top.len() > 10 {
                    top.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                    top.truncate(10);
                }
                if bot.len() > 10 {
                    bot.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    bot.truncate(10);
                }
            }
        }
    }
    grid.data.iter_mut().for_each(|v| *v = 0.0);
    for &(_, idx) in &top {
        grid.data[idx] = 1.0;
    }
    for &(_, idx) in &bot {
        grid.data[idx] = -1.0;
    }
}

/// Full benchmark outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgOutcome {
    pub rnm2_initial: f64,
    pub rnm2_final: f64,
    pub timed_s: f64,
}

/// Run `nit` V-cycles at size `n = 2^lt` on `threads` workers.
pub fn v_cycles(rt: &Runtime, threads: usize, lt: u32, nit: usize) -> MgOutcome {
    let n = 1usize << lt;
    // Levels 1..=lt; level k has side 2^k (+2 ghosts).
    let mut u_lv: Vec<Grid> = (1..=lt).map(|k| Grid::new(1 << k)).collect();
    let mut r_lv: Vec<Grid> = (1..=lt).map(|k| Grid::new(1 << k)).collect();
    let mut v = Grid::new(n);
    zran3(&mut v);

    let run_pass = |u_lv: &mut [Grid], r_lv: &mut [Grid], v: &Grid, iters: usize| -> (f64, f64) {
        let us: Vec<SyncSlice<f64>> = u_lv
            .iter_mut()
            .map(|g| SyncSlice::new(g.data.as_mut_slice()))
            .collect();
        let rs: Vec<SyncSlice<f64>> = r_lv
            .iter_mut()
            .map(|g| SyncSlice::new(g.data.as_mut_slice()))
            .collect();
        let mut vdata = v.data.clone();
        let vv = SyncSlice::new(vdata.as_mut_slice());
        let top = (lt - 1) as usize; // index of the finest level
        let side = |k: usize| (1usize << (k + 1)) + 2;
        let out = std::sync::Mutex::new((0.0f64, 0.0f64));
        rt.parallel(threads, |w| {
            // Zero u and r at every level, fix v's ghosts.
            for k in 0..=top {
                zero3(w, &us[k], side(k));
                zero3(w, &rs[k], side(k));
            }
            comm3(w, &vv, side(top));
            // r = v - A·0 = v (via resid for exact NPB arithmetic).
            resid(w, &us[top], &vv, &rs[top], side(top));
            let rnm2_0 = norm2u3(w, &rs[top], side(top));
            for _ in 0..iters {
                // Descend: restrict the residual to the coarsest level.
                for k in (1..=top).rev() {
                    rprj3(w, &rs[k], side(k), &rs[k - 1], side(k - 1));
                }
                // Coarsest: u = S r.
                zero3(w, &us[0], side(0));
                psinv(w, &rs[0], &us[0], side(0));
                // Ascend.
                for k in 1..top {
                    zero3(w, &us[k], side(k));
                    interp(w, &us[k - 1], side(k - 1), &us[k], side(k));
                    resid(w, &us[k], &rs[k], &rs[k], side(k));
                    psinv(w, &rs[k], &us[k], side(k));
                }
                // Finest level.
                interp(w, &us[top - 1], side(top - 1), &us[top], side(top));
                resid(w, &us[top], &vv, &rs[top], side(top));
                psinv(w, &rs[top], &us[top], side(top));
                // Final residual for this cycle.
                resid(w, &us[top], &vv, &rs[top], side(top));
            }
            let rnm2 = norm2u3(w, &rs[top], side(top));
            if w.is_master() {
                *out.lock().unwrap() = (rnm2_0, rnm2);
            }
        });
        out.into_inner().unwrap()
    };

    // Untimed warm-up cycle (NPB runs one mg3P+resid before the clock).
    let _ = run_pass(&mut u_lv, &mut r_lv, &v, 1);
    let t0 = std::time::Instant::now();
    let (rnm2_initial, rnm2_final) = run_pass(&mut u_lv, &mut r_lv, &v, nit);
    let timed_s = t0.elapsed().as_secs_f64();
    MgOutcome {
        rnm2_initial,
        rnm2_final,
        timed_s,
    }
}

/// Run MG for a class with verification.
pub fn run(rt: &Runtime, threads: usize, class: Class) -> KernelResult {
    let (n, lt, nit, rnm2_ref) = params(class);
    let outcome = v_cycles(rt, threads, lt, nit);
    let rel = ((outcome.rnm2_final - rnm2_ref) / rnm2_ref).abs();
    let verification = if rel <= 1e-8 {
        Verification::Published(format!(
            "rnm2={:.13e} matches NPB reference (rel err {:.2e})",
            outcome.rnm2_final, rel
        ))
    } else {
        // Fall back to self-consistency: the serial run must agree and the
        // V-cycles must have contracted the residual strongly.
        let serial = v_cycles(rt, 1, lt, nit);
        let agrees = ((outcome.rnm2_final - serial.rnm2_final) / serial.rnm2_final).abs() < 1e-10;
        // One NPB V-cycle contracts the residual by roughly an order of
        // magnitude; four cycles give ~1e-2..1e-3 overall on small grids.
        let contracted = outcome.rnm2_final < outcome.rnm2_initial * 1e-2;
        if agrees && contracted {
            Verification::SelfConsistent(format!(
                "rnm2={:.13e} (published {:.13e} not matched, rel {:.2e}); serial-parallel \
                 agreement and residual contraction {:.2e}→{:.2e} hold",
                outcome.rnm2_final, rnm2_ref, rel, outcome.rnm2_initial, outcome.rnm2_final
            ))
        } else {
            Verification::Failed(format!(
                "rnm2={:.13e}, want {:.13e}; agrees={agrees} contracted={contracted}",
                outcome.rnm2_final, rnm2_ref
            ))
        }
    };
    // NPB's MG op-count estimate: ~58 flops per fine-grid point per
    // iteration across the cycle (the standard figure used in its report).
    let ops = 58.0 * nit as f64 * (n as f64).powi(3);
    KernelResult {
        name: "MG",
        class,
        threads,
        wall_s: outcome.timed_s,
        mops: ops / outcome.timed_s / 1e6,
        verification,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::BackendKind;

    fn rt() -> Runtime {
        Runtime::with_backend(BackendKind::Native).unwrap()
    }

    #[test]
    fn zran3_places_ten_of_each_charge() {
        let mut g = Grid::new(16);
        zran3(&mut g);
        let plus = g.data.iter().filter(|&&v| v == 1.0).count();
        let minus = g.data.iter().filter(|&&v| v == -1.0).count();
        let zero = g.data.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(plus, 10);
        assert_eq!(minus, 10);
        assert_eq!(zero + 20, g.data.len());
    }

    #[test]
    fn zran3_is_deterministic() {
        let mut a = Grid::new(16);
        let mut b = Grid::new(16);
        zran3(&mut a);
        zran3(&mut b);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn residual_contracts_over_cycles() {
        let out = v_cycles(&rt(), 2, 4, 4); // 16³
        assert!(
            out.rnm2_final < out.rnm2_initial * 1e-2,
            "V-cycles must contract the residual: {} → {}",
            out.rnm2_initial,
            out.rnm2_final
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let rt = rt();
        let serial = v_cycles(&rt, 1, 4, 2);
        for threads in [2, 5] {
            let par = v_cycles(&rt, threads, 4, 2);
            assert!(
                ((par.rnm2_final - serial.rnm2_final) / serial.rnm2_final).abs() < 1e-12,
                "threads={threads}: {} vs {}",
                par.rnm2_final,
                serial.rnm2_final
            );
        }
    }

    #[test]
    fn class_s_verifies() {
        let res = run(&rt(), 4, Class::S);
        assert!(res.verified(), "{:?}", res.verification);
    }

    #[test]
    fn mca_backend_agrees() {
        let a = v_cycles(&rt(), 3, 4, 2);
        let b = v_cycles(&Runtime::with_backend(BackendKind::Mca).unwrap(), 3, 4, 2);
        assert!(((a.rnm2_final - b.rnm2_final) / a.rnm2_final).abs() < 1e-12);
    }
}
