//! Shared NPB infrastructure: problem classes, the NPB random-number
//! generator, result records, and the shared-slice helper the kernels use
//! for disjoint parallel writes.

pub mod randlc;
pub mod sync_slice;

pub use randlc::{ipow46, randlc, vranlc, NPB_A, NPB_SEED};
pub use sync_slice::SyncSlice;

/// NPB problem classes implemented here (the paper runs class A; S and W
/// exist "to validate the correctness of the compiler being tested and the
/// runtime library" — paper §6B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    S,
    W,
    A,
}

impl Class {
    /// Parse `"S" | "W" | "A"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Class> {
        match s.trim().to_ascii_uppercase().as_str() {
            "S" => Some(Class::S),
            "W" => Some(Class::W),
            "A" => Some(Class::A),
            _ => None,
        }
    }

    /// Single-letter label.
    pub fn label(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
        }
    }
}

/// How a kernel run was checked.
#[derive(Debug, Clone, PartialEq)]
pub enum Verification {
    /// Matched a published NPB reference value (string holds the detail).
    Published(String),
    /// Matched this crate's own serial execution and the kernel's
    /// invariants (the §6A self-consistency discipline).
    SelfConsistent(String),
    /// Verification failed (detail explains).
    Failed(String),
}

impl Verification {
    /// Whether the run is considered correct.
    pub fn passed(&self) -> bool {
        !matches!(self, Verification::Failed(_))
    }
}

/// One kernel execution's outcome.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (`"EP"`, ...).
    pub name: &'static str,
    pub class: Class,
    /// Team size used.
    pub threads: usize,
    /// Wall-clock seconds for the timed section (NPB convention: setup
    /// excluded).
    pub wall_s: f64,
    /// Millions of operations per second, NPB's kernel-specific metric.
    pub mops: f64,
    pub verification: Verification,
}

impl KernelResult {
    /// Whether verification passed.
    pub fn verified(&self) -> bool {
        self.verification.passed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parsing() {
        assert_eq!(Class::parse("a"), Some(Class::A));
        assert_eq!(Class::parse(" S "), Some(Class::S));
        assert_eq!(Class::parse("w"), Some(Class::W));
        assert_eq!(Class::parse("B"), None);
    }

    #[test]
    fn verification_pass_fail() {
        assert!(Verification::Published("x".into()).passed());
        assert!(Verification::SelfConsistent("x".into()).passed());
        assert!(!Verification::Failed("x".into()).passed());
    }
}
