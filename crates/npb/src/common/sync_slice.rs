//! Disjoint-write shared slices for worksharing kernels.
//!
//! The NPB kernels update large vectors/grids in parallel, every worker
//! writing a disjoint index set decided by the loop schedule.  Rust's
//! borrow rules cannot see that disjointness through a `Fn(&Worker)` region
//! closure, so [`SyncSlice`] provides the escape hatch: an unsafe,
//! explicitly-contracted window onto a `&mut [T]`.
//!
//! The contract (every `unsafe` block in the kernels cites it):
//!
//! * between two team synchronisation points, each index is written by at
//!   most one worker;
//! * no worker reads an index another worker may be writing in the same
//!   phase (reads of data written in *earlier* phases are fine — the
//!   barrier's release/acquire edge publishes them).

use std::marker::PhantomData;

/// A shared view of `&mut [T]` for phase-disjoint parallel access.
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is delegated to callers per the module
// contract; the type itself only hands out raw element pointers.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a mutable slice.  The borrow keeps the underlying storage
    /// exclusively reserved for this view's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `v` to index `i`.
    ///
    /// # Safety
    /// Caller must uphold the module contract: within the current phase,
    /// no other worker writes or reads index `i`.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v }
    }

    /// Read index `i`.
    ///
    /// # Safety
    /// Caller must uphold the module contract: within the current phase,
    /// no other worker writes index `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Mutable sub-slice `[start, start+len)`.
    ///
    /// # Safety
    /// Caller must uphold the module contract for the whole range.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }

    /// Immutable sub-slice `[start, start+len)`.
    ///
    /// # Safety
    /// No worker may be writing any index in the range during this phase.
    #[inline]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &[T] {
        debug_assert!(start + len <= self.len);
        unsafe { std::slice::from_raw_parts(self.ptr.add(start), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp::{BackendKind, Runtime, Schedule};

    #[test]
    fn disjoint_parallel_writes_land() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let mut v = vec![0u64; 1000];
        {
            let s = SyncSlice::new(&mut v);
            rt.parallel(4, |w| {
                w.for_range_nowait(0..1000, Schedule::Static { chunk: Some(7) }, |i| {
                    // SAFETY: the schedule assigns each i to one worker.
                    unsafe { s.set(i as usize, i * 3) };
                });
            });
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn phase_separation_publishes_writes() {
        let rt = Runtime::with_backend(BackendKind::Native).unwrap();
        let mut src = vec![0f64; 256];
        let mut dst = vec![0f64; 256];
        {
            let s = SyncSlice::new(&mut src);
            let d = SyncSlice::new(&mut dst);
            rt.parallel(3, |w| {
                w.for_range(0..256, Schedule::Static { chunk: None }, |i| {
                    // SAFETY: disjoint writes (phase 1).
                    unsafe { s.set(i as usize, i as f64) };
                });
                // for_range's implicit barrier separates the phases.
                w.for_range(0..256, Schedule::Static { chunk: None }, |i| {
                    // SAFETY: src is read-only this phase; dst writes disjoint.
                    unsafe { d.set(i as usize, s.get(i as usize) * 2.0) };
                });
            });
        }
        assert!(dst.iter().enumerate().all(|(i, &x)| x == i as f64 * 2.0));
    }

    #[test]
    fn subslice_views() {
        let mut v = vec![1u32, 2, 3, 4, 5, 6];
        let s = SyncSlice::new(&mut v);
        // SAFETY: single-threaded here.
        unsafe {
            let mid = s.slice_mut(2, 2);
            mid[0] = 30;
            mid[1] = 40;
            assert_eq!(s.slice(0, 6), &[1, 2, 30, 40, 5, 6]);
        }
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
    }
}
