//! The NPB linear congruential generator.
//!
//! NPB defines its pseudo-random stream as
//! `x_{k+1} = a · x_k  (mod 2^46)` with `a = 5^13`, implemented in double
//! precision by splitting operands into 23-bit halves so the 46-bit product
//! is exact.  Every kernel's input data and every published verification
//! value depends on reproducing this arithmetic bit-for-bit, which the
//! functions here do (they are direct transcriptions of `randlc`/`vranlc`
//! from the NPB sources).

/// The NPB multiplier, `5^13`.
pub const NPB_A: f64 = 1_220_703_125.0;

/// The seed most kernels start from.
pub const NPB_SEED: f64 = 314_159_265.0;

const R23: f64 = 1.0 / (1u64 << 23) as f64;
const R46: f64 = R23 * R23;
const T23: f64 = (1u64 << 23) as f64;
const T46: f64 = T23 * T23;

/// Advance `x` one LCG step and return the uniform deviate in `(0, 1)`.
#[inline]
pub fn randlc(x: &mut f64, a: f64) -> f64 {
    // Split a and x into 23-bit halves.
    let t1 = R23 * a;
    let a1 = t1.trunc();
    let a2 = a - T23 * a1;
    let t1 = R23 * *x;
    let x1 = t1.trunc();
    let x2 = *x - T23 * x1;
    // z = a1*x2 + a2*x1 (mod 2^23); full product mod 2^46.
    let t1 = a1 * x2 + a2 * x1;
    let t2 = (R23 * t1).trunc();
    let z = t1 - T23 * t2;
    let t3 = T23 * z + a2 * x2;
    let t4 = (R46 * t3).trunc();
    *x = t3 - T46 * t4;
    R46 * *x
}

/// Fill `out` with successive deviates, advancing `x` (NPB `vranlc`).
pub fn vranlc(x: &mut f64, a: f64, out: &mut [f64]) {
    for slot in out.iter_mut() {
        *slot = randlc(x, a);
    }
}

/// Compute the seed `a^exp · s (mod 2^46)` reachable after `exp` LCG steps
/// from `s` — NPB's `ipow46` + `randlc` jump-ahead, used to give each
/// parallel block an independent stream.
pub fn ipow46(a: f64, mut exp: u64) -> f64 {
    // Repeated squaring in the 46-bit modular arithmetic: randlc(x, y)
    // replaces x with x*y mod 2^46, which is exactly the multiply we need.
    let mut result = 1.0f64;
    let mut base = a;
    if exp == 0 {
        return result;
    }
    while exp > 1 {
        if exp % 2 == 1 {
            randlc(&mut result, base);
        }
        let b_copy = base;
        randlc(&mut base, b_copy);
        exp /= 2;
    }
    randlc(&mut result, base);
    result
}

/// Jump `s` forward by `steps` LCG steps.
pub fn skip_ahead(s: f64, steps: u64) -> f64 {
    if steps == 0 {
        return s;
    }
    let mult = ipow46(NPB_A, steps);
    let mut x = s;
    randlc(&mut x, mult);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_sync::rng::SmallRng;

    #[test]
    fn deviates_in_unit_interval_and_deterministic() {
        let mut x = NPB_SEED;
        let mut y = NPB_SEED;
        for _ in 0..10_000 {
            let a = randlc(&mut x, NPB_A);
            let b = randlc(&mut y, NPB_A);
            assert_eq!(a, b);
            assert!(a > 0.0 && a < 1.0);
        }
    }

    #[test]
    fn seed_is_exact_integer_state() {
        // The state must remain an exact integer < 2^46.
        let mut x = NPB_SEED;
        for _ in 0..1000 {
            randlc(&mut x, NPB_A);
            assert_eq!(x, x.trunc());
            assert!(x >= 0.0 && x < (1u64 << 46) as f64);
        }
    }

    #[test]
    fn matches_direct_modular_arithmetic() {
        // Cross-check the double-precision trick against u128 arithmetic.
        let mut x = NPB_SEED;
        let mut ix: u128 = NPB_SEED as u128;
        let ia: u128 = NPB_A as u128;
        let m: u128 = 1 << 46;
        for _ in 0..10_000 {
            randlc(&mut x, NPB_A);
            ix = (ix * ia) % m;
            assert_eq!(x as u128, ix);
        }
    }

    #[test]
    fn vranlc_equals_repeated_randlc() {
        let mut x1 = NPB_SEED;
        let mut x2 = NPB_SEED;
        let mut buf = [0.0; 257];
        vranlc(&mut x1, NPB_A, &mut buf);
        for (i, &b) in buf.iter().enumerate() {
            let r = randlc(&mut x2, NPB_A);
            assert_eq!(r, b, "element {i}");
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn skip_ahead_matches_stepping() {
        for steps in [0u64, 1, 2, 3, 7, 64, 1000, 65536] {
            let jumped = skip_ahead(NPB_SEED, steps);
            let mut x = NPB_SEED;
            for _ in 0..steps {
                randlc(&mut x, NPB_A);
            }
            assert_eq!(jumped, x, "steps={steps}");
        }
    }

    #[test]
    fn skip_ahead_is_additive() {
        let mut rng = SmallRng::seed_from_u64(0x4a9d_0001);
        for _ in 0..64 {
            let a = rng.gen_range(0, 5000);
            let b = rng.gen_range(0, 5000);
            let one_hop = skip_ahead(NPB_SEED, a + b);
            let two_hops = skip_ahead(skip_ahead(NPB_SEED, a), b);
            assert_eq!(one_hop, two_hops, "a={a}, b={b}");
        }
    }

    #[test]
    fn state_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(0x4a9d_0002);
        for _ in 0..256 {
            let steps = rng.gen_range(1, 10_000);
            let s = skip_ahead(NPB_SEED, steps);
            assert!(s >= 0.0 && s < (1u64 << 46) as f64);
            assert_eq!(s, s.trunc());
        }
    }
}
