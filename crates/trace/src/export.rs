//! Exporters: chrome://tracing JSON, the human report table, and the
//! embeddable [`RunSummary`].

use crate::event::Phase;
use crate::metrics::MetricsSnapshot;
use crate::tracer::Trace;

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the same hand-rolled discipline as the bench harness's JSON writer; no
/// serializer dependency.  Public because every hand-rolled JSON writer
/// in the workspace (bench baselines, `romp-serve` stats responses) needs
/// exactly this and nothing more.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Trace {
    /// Render as chrome://tracing "Trace Event Format" JSON (load the
    /// string from a file via `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Lanes become `tid`s (with thread-name metadata records); span
    /// begin/ends become `"B"`/`"E"` events, instants become `"i"`; the
    /// two per-event arguments are carried under `args`.
    ///
    /// ```
    /// use romp_trace::{EventKind, Tracer};
    /// let t = Tracer::new(true);
    /// t.begin(EventKind::Region, 0, 1);
    /// t.end(EventKind::Region, 0, 1);
    /// let json = t.drain().chrome_json();
    /// assert!(json.starts_with("{\"traceEvents\":["));
    /// assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
    /// ```
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        // Thread-name metadata first, one per lane.
        let mut body = String::new();
        for (lane_idx, lane) in self.lanes.iter().enumerate() {
            if !first {
                body.push(',');
            }
            first = false;
            body.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane_idx,
                json_escape(&lane.label)
            ));
        }
        for (lane_idx, lane) in self.lanes.iter().enumerate() {
            for e in &lane.events {
                if !first {
                    body.push(',');
                }
                first = false;
                let ph = match e.phase {
                    Phase::Begin => "B",
                    Phase::End => "E",
                    Phase::Instant => "i",
                };
                // ts is microseconds; keep nanosecond precision as a
                // 3-decimal fraction without float formatting.
                let ts = format!("{}.{:03}", e.ts_ns / 1_000, e.ts_ns % 1_000);
                body.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"romp\",\"ph\":\"{}\",\"ts\":{},\
                     \"pid\":1,\"tid\":{}",
                    e.kind.label(),
                    ph,
                    ts,
                    lane_idx
                ));
                if e.phase == Phase::Instant {
                    body.push_str(",\"s\":\"t\"");
                }
                body.push_str(&format!(
                    ",\"args\":{{\"tid\":{},\"a\":{},\"b\":{}}}}}",
                    e.tid as i64, e.a, e.b
                ));
            }
        }
        out.push_str(&body);
        out.push_str("],\"displayTimeUnit\":\"ns\"");
        out.push_str(&format!(",\"romp\":{{\"dropped\":{}}}", self.dropped));
        out.push('}');
        out
    }
}

impl crate::metrics::HistogramSnapshot {
    /// Render as a JSON object: count, sum, mean, and the standard
    /// latency quantiles (`null` when the quantile falls in the +inf
    /// overflow bucket or the histogram is empty).
    ///
    /// ```
    /// use romp_trace::Histogram;
    /// let h = Histogram::exponential_ns();
    /// h.record(1_500);
    /// let json = h.snapshot().to_json();
    /// assert!(json.contains("\"count\":1"));
    /// assert!(json.contains("\"p99\":"));
    /// ```
    pub fn to_json(&self) -> String {
        let q = |p: f64| {
            self.quantile(p)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".into())
        };
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            self.count,
            self.sum,
            self.mean(),
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999)
        )
    }
}

impl MetricsSnapshot {
    /// Render the whole snapshot as one JSON object with `counters`,
    /// `gauges` and `histograms` members — the payload a `romp-serve`
    /// `stats` response embeds, and the machine-readable form of
    /// [`RunSummary::render`]'s instrument sections.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", json_escape(name), h.to_json()));
        }
        s.push_str("}}");
        s
    }
}

/// The embeddable per-run observability summary: event totals, drop
/// accounting, and a full metrics snapshot.  Produced by
/// [`crate::Tracer::summary`]; the chaos harness attaches one per seed
/// and `table1 --report` prints one per backend.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Events recorded (including ones later dropped by a full ring).
    pub events: u64,
    /// Events dropped by full rings.
    pub dropped: u64,
    /// Nonzero per-kind event counts, in kind order.
    pub by_kind: Vec<(&'static str, u64)>,
    /// Snapshot of every named metric.
    pub metrics: MetricsSnapshot,
}

impl RunSummary {
    /// Render the human `--report` table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "trace: {} events recorded, {} dropped\n",
            self.events, self.dropped
        ));
        if !self.by_kind.is_empty() {
            s.push_str("  events by kind:\n");
            for (name, n) in &self.by_kind {
                s.push_str(&format!("    {name:<18} {n:>10}\n"));
            }
        }
        if !self.metrics.counters.is_empty() {
            s.push_str("  counters:\n");
            for (name, v) in &self.metrics.counters {
                s.push_str(&format!("    {name:<28} {v:>10}\n"));
            }
        }
        if !self.metrics.gauges.is_empty() {
            s.push_str("  gauges:\n");
            for (name, v) in &self.metrics.gauges {
                s.push_str(&format!("    {name:<28} {v:>10}\n"));
            }
        }
        for (name, h) in &self.metrics.histograms {
            s.push_str(&format!(
                "  histogram {name}: n={} mean={}ns p50≤{} p99≤{}\n",
                h.count,
                h.mean(),
                h.quantile(0.50)
                    .map(|v| format!("{v}ns"))
                    .unwrap_or_else(|| "overflow".into()),
                h.quantile(0.99)
                    .map(|v| format!("{v}ns"))
                    .unwrap_or_else(|| "overflow".into()),
            ));
        }
        s
    }

    /// Render as a JSON object (for embedding in bench output).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"events\":{},\"dropped\":{},\"by_kind\":{{",
            self.events, self.dropped
        );
        for (i, (name, n)) in self.by_kind.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", json_escape(name), n));
        }
        s.push_str("},\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::tracer::Tracer;

    #[test]
    fn chrome_json_is_structurally_sound() {
        let t = Tracer::new(true);
        t.begin(EventKind::Region, 0, 1);
        t.instant(EventKind::Fault, 0, 3, 7);
        t.end(EventKind::Region, 0, 1);
        let json = t.drain().chrome_json();
        // Braces/brackets balance (no nested strings carry them here).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "braces balance in {json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"name\":\"region\""));
        assert!(json.contains("\"name\":\"fault.injected\""));
        assert!(json.contains("\"ph\":\"M\""), "thread metadata present");
        assert!(json.contains("\"s\":\"t\""), "instants carry scope");
        assert!(json.contains("\"a\":3") && json.contains("\"b\":7"));
        assert!(json.ends_with('}') && json.starts_with('{'));
    }

    #[test]
    fn chrome_json_escapes_labels() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_ts_keeps_ns_precision() {
        let trace = Trace {
            lanes: vec![crate::Lane {
                label: "main".into(),
                events: vec![crate::TraceEvent {
                    ts_ns: 1_234_567,
                    ..Default::default()
                }],
            }],
            dropped: 0,
        };
        assert!(trace.chrome_json().contains("\"ts\":1234.567"));
    }

    #[test]
    fn metrics_snapshot_json_is_balanced_and_complete() {
        let t = Tracer::new(true);
        t.metrics().counter("serve.submit.accepted").add(7);
        t.metrics().gauge("serve.queue.depth").set(3);
        let h = t.metrics().histogram_ns("serve.latency.total_ns");
        for _ in 0..100 {
            h.record(2_000);
        }
        let json = t.metrics().snapshot().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"serve.submit.accepted\":7"));
        assert!(json.contains("\"serve.queue.depth\":3"));
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("\"p999\":2048"), "{json}");
    }

    #[test]
    fn empty_histogram_json_has_null_quantiles() {
        let h = crate::metrics::Histogram::new(&[10]);
        let json = h.snapshot().to_json();
        assert!(json.contains("\"p50\":null"));
        assert!(json.contains("\"count\":0"));
    }

    #[test]
    fn summary_renders_and_jsons() {
        let t = Tracer::new(true);
        t.instant(EventKind::Barrier, 0, 0, 0);
        t.metrics().counter("task.steal.hit").add(5);
        t.metrics().histogram_ns("mca.lock_wait_ns").record(2_000);
        let s = t.summary();
        let rendered = s.render();
        assert!(rendered.contains("1 events recorded"));
        assert!(rendered.contains("barrier"));
        assert!(rendered.contains("task.steal.hit"));
        assert!(rendered.contains("histogram mca.lock_wait_ns"));
        let json = s.to_json();
        assert!(json.contains("\"barrier\":1"));
        assert!(json.contains("\"task.steal.hit\":5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
