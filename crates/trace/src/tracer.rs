//! The armed-gated recorder and the drained [`Trace`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mca_sync::{CachePadded, Mutex};

use crate::event::{EventKind, Phase, TraceEvent, NUM_KINDS};
use crate::export::RunSummary;
use crate::metrics::MetricsRegistry;
use crate::ring::EventRing;

/// Default per-thread ring capacity (events).  16 Ki × 32 B = 512 KiB per
/// participating thread — generous for a chaos seed, bounded for a bench.
pub(crate) const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's ring for the tracer it touched last.  One
    /// entry (not a map): threads overwhelmingly record against a single
    /// runtime's tracer, and a miss only costs the registry lock.
    static THREAD_RING: RefCell<Option<(u64, Arc<EventRing>)>> = const { RefCell::new(None) };
}

/// The event recorder: per-thread SPSC rings behind one relaxed-load
/// armed gate, plus the [`MetricsRegistry`] that rides along.
///
/// A `Tracer` is cheap to share (`Arc` it into every subsystem).  While
/// disarmed, every `record`/`begin`/`end`/`instant` call is a single
/// relaxed atomic load and an early return — the same zero-overhead
/// discipline as the MRAPI fault-probe gate, and the property the
/// re-measured Table I in EXPERIMENTS.md pins down.
pub struct Tracer {
    id: u64,
    armed: AtomicBool,
    epoch: Instant,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<EventRing>>>,
    /// Events recorded per kind (includes events later dropped by a full
    /// ring), so summaries don't need to drain.
    kind_counts: [CachePadded<AtomicU64>; NUM_KINDS],
    metrics: MetricsRegistry,
}

impl Tracer {
    /// A tracer with the default per-thread ring capacity; `armed`
    /// decides whether it records.
    pub fn new(armed: bool) -> Self {
        Self::with_capacity(armed, DEFAULT_RING_CAPACITY)
    }

    /// A tracer whose per-thread rings hold `ring_capacity` events
    /// (rounded up to a power of two).
    pub fn with_capacity(armed: bool, ring_capacity: usize) -> Self {
        Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            armed: AtomicBool::new(armed),
            epoch: Instant::now(),
            ring_capacity,
            rings: Mutex::new(Vec::new()),
            kind_counts: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Whether recording is on.  This is the one relaxed load every
    /// instrumented hot path pays when tracing is off.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Arm or disarm recording.  Subsystems that install deeper hooks at
    /// construction (e.g. the MRAPI site observer) only do so when the
    /// tracer was armed at that point; prefer deciding via configuration.
    pub fn set_armed(&self, on: bool) {
        self.armed.store(on, Ordering::Release);
    }

    /// Nanoseconds since this tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The metrics registry riding along with this tracer.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Record one event (no-op while disarmed).
    #[inline]
    pub fn record(&self, kind: EventKind, phase: Phase, tid: u32, a: u64, b: u64) {
        if !self.armed() {
            return;
        }
        self.record_armed(kind, phase, tid, a, b);
    }

    /// Open a span (`tid` = team thread number, or `u32::MAX` outside a
    /// team context).
    #[inline]
    pub fn begin(&self, kind: EventKind, tid: u32, a: u64) {
        self.record(kind, Phase::Begin, tid, a, 0);
    }

    /// Close a span.
    #[inline]
    pub fn end(&self, kind: EventKind, tid: u32, a: u64) {
        self.record(kind, Phase::End, tid, a, 0);
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, kind: EventKind, tid: u32, a: u64, b: u64) {
        self.record(kind, Phase::Instant, tid, a, b);
    }

    fn record_armed(&self, kind: EventKind, phase: Phase, tid: u32, a: u64, b: u64) {
        let ev = TraceEvent {
            ts_ns: self.now_ns(),
            kind,
            phase,
            tid,
            a,
            b,
        };
        self.kind_counts[kind.index()]
            .0
            .fetch_add(1, Ordering::Relaxed);
        THREAD_RING.with(|cell| {
            let mut cached = cell.borrow_mut();
            match cached.as_ref() {
                Some((id, ring)) if *id == self.id => {
                    ring.push(ev);
                }
                _ => {
                    let ring = self.ring_for_current_thread();
                    ring.push(ev);
                    *cached = Some((self.id, ring));
                }
            }
        });
    }

    /// The calling thread's ring on this tracer, registering one on first
    /// use (cache-miss path of `record_armed`).
    fn ring_for_current_thread(&self) -> Arc<EventRing> {
        let me = std::thread::current();
        let mut rings = self.rings.lock();
        if let Some(r) = rings.iter().find(|r| r.owner() == me.id()) {
            return Arc::clone(r);
        }
        let label = me
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{}", rings.len()));
        let ring = Arc::new(EventRing::new(self.ring_capacity, label));
        rings.push(Arc::clone(&ring));
        ring
    }

    /// Total events recorded so far (including ring-dropped ones).
    pub fn events_recorded(&self) -> u64 {
        self.kind_counts
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Total events dropped by full rings so far.
    pub fn events_dropped(&self) -> u64 {
        self.rings.lock().iter().map(|r| r.dropped()).sum()
    }

    /// Drain every thread's ring into a [`Trace`].  Call at a quiescent
    /// point (no region in flight) — the reader side is serialized, but
    /// events recorded concurrently with the drain land in the next one.
    pub fn drain(&self) -> Trace {
        let rings = self.rings.lock();
        let mut lanes = Vec::with_capacity(rings.len());
        let mut dropped = 0;
        for ring in rings.iter() {
            let mut events = Vec::with_capacity(ring.len());
            ring.drain_into(&mut events);
            dropped += ring.dropped();
            lanes.push(Lane {
                label: ring.label().to_string(),
                events,
            });
        }
        Trace { lanes, dropped }
    }

    /// A non-consuming summary: per-kind event counts, drop accounting,
    /// and a snapshot of every metric.  This is what the chaos harness
    /// and the benches embed in their output.
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            events: self.events_recorded(),
            dropped: self.events_dropped(),
            by_kind: EventKind::ALL
                .iter()
                .map(|k| {
                    (
                        k.label(),
                        self.kind_counts[k.index()].0.load(Ordering::Relaxed),
                    )
                })
                .filter(|(_, n)| *n > 0)
                .collect(),
            metrics: self.metrics.snapshot(),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("armed", &self.armed())
            .field("events", &self.events_recorded())
            .field("dropped", &self.events_dropped())
            .finish()
    }
}

/// One thread's drained events, in recording order.
#[derive(Debug, Clone)]
pub struct Lane {
    /// The recording thread's name at ring registration.
    pub label: String,
    /// The events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A drained trace: one [`Lane`] per participating thread.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-thread event lanes.
    pub lanes: Vec<Lane>,
    /// Cumulative events dropped by full rings (see the drop policy on
    /// [`EventRing`]).
    pub dropped: u64,
}

impl Trace {
    /// Total drained events across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// How many events match `kind` and `phase`.
    pub fn count(&self, kind: EventKind, phase: Phase) -> usize {
        self.lanes
            .iter()
            .flat_map(|l| &l.events)
            .filter(|e| e.kind == kind && e.phase == phase)
            .count()
    }

    /// Whether every `Begin` of `kind` has a matching `End` *on the same
    /// lane* (spans never migrate threads), with no `End` before its
    /// `Begin`.
    pub fn balanced(&self, kind: EventKind) -> bool {
        self.lanes.iter().all(|lane| {
            let mut depth = 0i64;
            for e in &lane.events {
                if e.kind != kind {
                    continue;
                }
                match e.phase {
                    Phase::Begin => depth += 1,
                    Phase::End => {
                        depth -= 1;
                        if depth < 0 {
                            return false;
                        }
                    }
                    Phase::Instant => {}
                }
            }
            depth == 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_records_nothing() {
        let t = Tracer::new(false);
        t.begin(EventKind::Region, 0, 0);
        t.instant(EventKind::Mrapi, 0, 0, 0);
        assert_eq!(t.events_recorded(), 0);
        assert_eq!(t.drain().total_events(), 0);
        assert!(!t.armed());
    }

    #[test]
    fn armed_records_and_drains_in_order() {
        let t = Tracer::new(true);
        t.begin(EventKind::Region, 0, 42);
        t.instant(EventKind::TaskSpawn, 0, 1, 2);
        t.end(EventKind::Region, 0, 42);
        assert_eq!(t.events_recorded(), 3);
        let trace = t.drain();
        assert_eq!(trace.lanes.len(), 1);
        let evs = &trace.lanes[0].events;
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(evs[0].phase, Phase::Begin);
        assert_eq!(evs[2].phase, Phase::End);
        assert_eq!(evs[0].a, 42);
        // Drained: a second drain is empty, counts persist.
        assert_eq!(t.drain().total_events(), 0);
        assert_eq!(t.events_recorded(), 3);
    }

    #[test]
    fn each_thread_gets_its_own_lane() {
        let t = Arc::new(Tracer::new(true));
        t.instant(EventKind::Barrier, 0, 0, 0);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::Builder::new()
                    .name(format!("lane-test-{i}"))
                    .spawn(move || {
                        for _ in 0..10 {
                            t.instant(EventKind::Barrier, i, 0, 0);
                        }
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = t.drain();
        assert_eq!(trace.lanes.len(), 4, "main + 3 workers");
        assert_eq!(trace.total_events(), 31);
        assert!(trace
            .lanes
            .iter()
            .any(|l| l.label.starts_with("lane-test-")));
    }

    #[test]
    fn overflow_accounted_in_summary() {
        let t = Tracer::with_capacity(true, 4);
        for i in 0..20 {
            t.instant(EventKind::Mrapi, 0, i, 0);
        }
        assert_eq!(t.events_recorded(), 20, "attempts counted");
        assert_eq!(t.events_dropped(), 16, "overflow counted");
        let s = t.summary();
        assert_eq!(s.events, 20);
        assert_eq!(s.dropped, 16);
        assert_eq!(s.by_kind, vec![("mrapi", 20)]);
        assert_eq!(t.drain().dropped, 16);
    }

    #[test]
    fn balanced_detects_mismatches() {
        let t = Tracer::new(true);
        t.begin(EventKind::Barrier, 0, 0);
        assert!(!t.drain().balanced(EventKind::Barrier), "open span");
        t.end(EventKind::Barrier, 0, 0);
        assert!(
            !t.drain().balanced(EventKind::Barrier),
            "end without begin (begin was drained away)"
        );
        t.begin(EventKind::Barrier, 0, 0);
        t.end(EventKind::Barrier, 0, 0);
        assert!(t.drain().balanced(EventKind::Barrier));
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_mix() {
        let a = Tracer::new(true);
        let b = Tracer::new(true);
        a.instant(EventKind::Mrapi, 0, 1, 0);
        b.instant(EventKind::Barrier, 0, 2, 0);
        a.instant(EventKind::Mrapi, 0, 3, 0);
        let ta = a.drain();
        let tb = b.drain();
        assert_eq!(ta.total_events(), 2);
        assert_eq!(tb.total_events(), 1);
        assert!(ta
            .lanes
            .iter()
            .flat_map(|l| &l.events)
            .all(|e| e.kind == EventKind::Mrapi));
    }
}
