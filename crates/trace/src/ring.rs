//! The per-thread SPSC event ring.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::ThreadId;

use mca_sync::CachePadded;

use crate::event::TraceEvent;

/// A bounded single-producer/single-consumer ring of [`TraceEvent`]s.
///
/// One ring per (tracer, thread): the owning thread is the only producer,
/// and the only consumer is [`crate::Tracer::drain`], which serializes
/// readers behind the tracer's ring registry lock.  Head and tail live on
/// their own cache lines so the producer never shares a line with the
/// drain.
///
/// **Drop policy**: a full ring drops the *new* event and counts it in
/// [`EventRing::dropped`] — the recorded prefix stays contiguous from the
/// start of the window, which keeps span begin/ends paired for as long as
/// recording kept up.  Capacity is fixed at construction (a power of two)
/// so the hot path is mask-and-store, never allocation.
pub struct EventRing {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    mask: u64,
    /// Next write position (producer-owned; Release on publish).
    head: CachePadded<AtomicU64>,
    /// Next read position (consumer-owned; Release after a drain).
    tail: CachePadded<AtomicU64>,
    /// Events discarded because the ring was full.
    dropped: CachePadded<AtomicU64>,
    owner: ThreadId,
    label: String,
}

// SAFETY: `slots` is only written by the owner thread (the single
// producer) in the `[tail + cap, head]` window and only read by one
// drainer at a time in `[tail, head)`; the head/tail Acquire/Release
// pairs order the slot accesses (see `push`/`drain`).
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// A ring with `capacity` slots (rounded up to a power of two),
    /// owned by the calling thread and labeled for trace lanes.
    pub fn new(capacity: usize, label: String) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(TraceEvent::default()))
            .collect();
        EventRing {
            slots,
            mask: (cap - 1) as u64,
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
            owner: std::thread::current().id(),
            label,
        }
    }

    /// The thread that owns the producer side.
    pub fn owner(&self) -> ThreadId {
        self.owner
    }

    /// The lane label (thread name at registration).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.0.load(Ordering::Relaxed)
    }

    /// Events currently buffered (not yet drained).
    pub fn len(&self) -> usize {
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        head.wrapping_sub(tail) as usize
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: append `ev`, or drop it (counting) if the ring is
    /// full.  Must only be called from the owning thread.
    pub fn push(&self, ev: TraceEvent) -> bool {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            self.dropped.0.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: only the owner thread writes, and the slot at `head` is
        // outside the `[tail, head)` window any drainer reads; the
        // Release store below publishes the write.
        unsafe { *self.slots[(head & self.mask) as usize].get() = ev };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: move every buffered event into `out`.  Callers must
    /// serialize drains (the tracer's registry lock does).
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.0.load(Ordering::Acquire);
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        while tail != head {
            // SAFETY: `[tail, head)` slots were published by the Release
            // store in `push` (paired with the Acquire above) and cannot
            // be overwritten until `tail` advances past them.
            out.push(unsafe { *self.slots[(tail & self.mask) as usize].get() });
            tail = tail.wrapping_add(1);
        }
        self.tail.0.store(tail, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase};

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind: EventKind::Barrier,
            phase: Phase::Instant,
            tid: 0,
            a: ts,
            b: 0,
        }
    }

    #[test]
    fn push_drain_roundtrip() {
        let ring = EventRing::new(8, "t".into());
        for i in 0..5 {
            assert!(ring.push(ev(i)));
        }
        assert_eq!(ring.len(), 5);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        assert!(out.iter().enumerate().all(|(i, e)| e.ts_ns == i as u64));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let ring = EventRing::new(4, "t".into());
        assert_eq!(ring.capacity(), 4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 4, "ring keeps the oldest window");
        assert_eq!(ring.dropped(), 6, "every overflow is accounted");
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        // Drop-newest: the contiguous prefix 0..4 survives.
        assert_eq!(
            out.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Space freed by the drain is writable again.
        assert!(ring.push(ev(99)));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 6, "drain does not reset the counter");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::new(3, String::new()).capacity(), 4);
        assert_eq!(EventRing::new(0, String::new()).capacity(), 2);
        assert_eq!(EventRing::new(16, String::new()).capacity(), 16);
    }

    #[test]
    fn drain_then_refill_wraps_cleanly() {
        let ring = EventRing::new(4, "t".into());
        let mut out = Vec::new();
        // Cycle several capacities' worth through the ring.
        for round in 0..5u64 {
            for i in 0..3 {
                assert!(ring.push(ev(round * 10 + i)));
            }
            out.clear();
            ring.drain_into(&mut out);
            assert_eq!(out.len(), 3);
            assert_eq!(out[0].ts_ns, round * 10);
        }
        assert_eq!(ring.dropped(), 0);
    }
}
