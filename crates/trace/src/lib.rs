//! # romp-trace — structured observability for the romp runtime
//!
//! A zero-dependency tracing and metrics layer, built so the runtime can be
//! *seen into* (was a slow run contention, a retry storm, or a backend
//! handover?) without perturbing what it measures:
//!
//! * **Event recorder** ([`Tracer`]) — lock-free, per-thread ring-buffered
//!   spans and instants (region begin/end, barrier episodes, lock
//!   acquire/contend/timeout, task spawn/steal/run, MRAPI boundary
//!   crossings, fault injections, backend fallback).  Each thread writes
//!   its own cache-padded SPSC ring; a drain-on-quiesce reader collects
//!   them into a [`Trace`].  The **unarmed cost is one relaxed atomic
//!   load** — the same gate discipline as the MRAPI `FaultProbe`.
//! * **Metrics registry** ([`MetricsRegistry`]) — named counters, gauges
//!   and fixed-bucket histograms (steal success rate, lock wait-time
//!   distribution, retry counts, shmem bytes, ...), generalizing the
//!   runtime's always-on `RuntimeStats`.
//! * **Exporters** — chrome://tracing JSON ([`Trace::chrome_json`]), a
//!   human-readable report table ([`RunSummary::render`]), and the
//!   [`RunSummary`] struct the chaos harness and benches embed in their
//!   output.
//!
//! ## Example
//!
//! ```
//! use romp_trace::{EventKind, Phase, Tracer};
//!
//! let tracer = Tracer::new(true); // armed
//! tracer.begin(EventKind::Region, 0, 1);
//! tracer.instant(EventKind::TaskSpawn, 0, 7, 0);
//! tracer.end(EventKind::Region, 0, 1);
//!
//! let trace = tracer.drain();
//! assert_eq!(trace.count(EventKind::Region, Phase::Begin), 1);
//! assert_eq!(trace.count(EventKind::Region, Phase::End), 1);
//! let json = trace.chrome_json(); // load this in chrome://tracing
//! assert!(json.contains("\"traceEvents\""));
//! ```
//!
//! A disarmed tracer records nothing and costs one relaxed load per
//! call site:
//!
//! ```
//! use romp_trace::{EventKind, Tracer};
//! let tracer = Tracer::new(false);
//! tracer.instant(EventKind::Barrier, 0, 0, 0);
//! assert_eq!(tracer.drain().total_events(), 0);
//! ```

#![warn(missing_docs)]

mod event;
mod export;
mod metrics;
mod ring;
mod tracer;

pub use event::{EventKind, Phase, TraceEvent, NUM_KINDS};
pub use export::{json_escape, RunSummary};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use ring::EventRing;
pub use tracer::{Lane, Trace, Tracer};
