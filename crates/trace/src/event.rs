//! The fixed-size event record the per-thread rings carry.

/// Number of distinct [`EventKind`]s (sizes the per-kind counters).
pub const NUM_KINDS: usize = 12;

/// What an event describes.
///
/// The set covers every hot-path episode the runtime wants to explain
/// after the fact: region and barrier spans, the lock life cycle on the
/// MCA backend, the task scheduler, MRAPI boundary crossings, injected
/// faults, and backend fallback handovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// One parallel region (span on the master, one per team member).
    Region = 0,
    /// One barrier episode (span per member).
    Barrier = 1,
    /// One named critical section (span per entry; `a` = name hash).
    Critical = 2,
    /// A lock was acquired (`a` = mutex key, `b` = wait in nanoseconds).
    LockAcquire = 3,
    /// A contended lock wait (span: begin at first timeout, end at
    /// acquisition; `a` = mutex key).
    LockContend = 4,
    /// One lock-wait timeout was reported (`a` = mutex key, `b` =
    /// cumulative wait in nanoseconds).
    LockTimeout = 5,
    /// An explicit task was queued.
    TaskSpawn = 6,
    /// An explicit task ran.
    TaskRun = 7,
    /// A task was stolen from a teammate (`a` = victim thread number).
    TaskSteal = 8,
    /// An MRAPI boundary crossing (`a` = fault-site index, `b` = injected
    /// status code, or `u64::MAX` when the call passed clean).
    Mrapi = 9,
    /// A fault probe injected a failure (`a` = fault-site index, `b` =
    /// status code).
    Fault = 10,
    /// A backend (or single lock) degraded to its fallback.
    Fallback = 11,
}

impl EventKind {
    /// Every kind, in index order.
    pub const ALL: [EventKind; NUM_KINDS] = [
        EventKind::Region,
        EventKind::Barrier,
        EventKind::Critical,
        EventKind::LockAcquire,
        EventKind::LockContend,
        EventKind::LockTimeout,
        EventKind::TaskSpawn,
        EventKind::TaskRun,
        EventKind::TaskSteal,
        EventKind::Mrapi,
        EventKind::Fault,
        EventKind::Fallback,
    ];

    /// Dense index (for per-kind counters).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Display label (also the chrome-trace event name).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Region => "region",
            EventKind::Barrier => "barrier",
            EventKind::Critical => "critical",
            EventKind::LockAcquire => "lock.acquire",
            EventKind::LockContend => "lock.contend",
            EventKind::LockTimeout => "lock.timeout",
            EventKind::TaskSpawn => "task.spawn",
            EventKind::TaskRun => "task.run",
            EventKind::TaskSteal => "task.steal",
            EventKind::Mrapi => "mrapi",
            EventKind::Fault => "fault.injected",
            EventKind::Fallback => "backend.fallback",
        }
    }
}

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Span start (chrome-trace `"B"`).
    Begin,
    /// Span end (chrome-trace `"E"`).
    End,
    /// A point event (chrome-trace `"i"`).
    Instant,
}

/// One recorded event: a fixed-size `Copy` record so ring writes are a
/// handful of stores with no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning tracer's epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Span begin/end or instant.
    pub phase: Phase,
    /// OpenMP thread number inside the team, or `u32::MAX` when the event
    /// did not happen in a team context (backend internals).
    pub tid: u32,
    /// Kind-specific argument (see [`EventKind`] variants).
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

impl Default for TraceEvent {
    fn default() -> Self {
        TraceEvent {
            ts_ns: 0,
            kind: EventKind::Region,
            phase: Phase::Instant,
            tid: u32::MAX,
            a: 0,
            b: 0,
        }
    }
}
