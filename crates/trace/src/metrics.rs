//! Named counters, gauges and fixed-bucket histograms.
//!
//! The registry generalizes the runtime's always-on `RuntimeStats`: any
//! subsystem can mint a named instrument once (get-or-create under a
//! short registry lock), cache the `Arc`, and bump it from hot paths with
//! relaxed atomics.  Snapshots are taken without stopping writers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mca_sync::{CachePadded, Mutex};

/// A monotonically increasing named count.
///
/// ```
/// use romp_trace::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// let hits = reg.counter("task.steal.hit");
/// hits.add(3);
/// hits.incr();
/// assert_eq!(reg.counter("task.steal.hit").get(), 4); // same instrument
/// ```
pub struct Counter(CachePadded<AtomicU64>);

impl Default for Counter {
    fn default() -> Self {
        Counter(CachePadded::new(AtomicU64::new(0)))
    }
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0 .0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0 .0.load(Ordering::Relaxed)
    }
}

/// A named last-write-wins value (queue depths, team sizes, ...).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (running maximum).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` samples (typically nanoseconds).
///
/// Bucket upper bounds are fixed at construction; recording is two
/// relaxed adds plus a binary search over the bounds — no floats, no
/// allocation, writers never block.
///
/// ```
/// use romp_trace::Histogram;
/// let h = Histogram::new(&[10, 100, 1_000]);
/// h.record(5);      // bucket ≤ 10
/// h.record(10);     // still ≤ 10 (bounds are inclusive)
/// h.record(99);     // bucket ≤ 100
/// h.record(40_000); // overflow bucket
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.buckets[0], (Some(10), 2));
/// assert_eq!(snap.buckets[3], (None, 1)); // +inf bucket
/// assert_eq!(snap.quantile(0.5), Some(10));
/// ```
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing; the final bucket
    /// (index `bounds.len()`) is the implicit +inf overflow.
    bounds: Box<[u64]>,
    buckets: Box<[CachePadded<AtomicU64>]>,
    count: CachePadded<AtomicU64>,
    sum: CachePadded<AtomicU64>,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds (must be
    /// strictly increasing); an overflow bucket is added automatically.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..bounds.len() + 1)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            count: CachePadded::new(AtomicU64::new(0)),
            sum: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The default latency histogram: power-of-two bounds from 1 µs to
    /// ~1 s (21 buckets plus overflow), wide enough for lock waits and
    /// retry backoffs without float bucketing.
    pub fn exponential_ns() -> Self {
        let bounds: Vec<u64> = (10..=30).map(|p| 1u64 << p).collect();
        Histogram::new(&bounds)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].0.fetch_add(1, Ordering::Relaxed);
        self.count.0.fetch_add(1, Ordering::Relaxed);
        self.sum.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Copy out the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.0.load(Ordering::Relaxed),
            sum: self.sum.0.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (self.bounds.get(i).copied(), b.0.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(inclusive upper bound, count)` per bucket; `None` bound is the
    /// +inf overflow bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The inclusive upper bound of the bucket containing quantile `q`
    /// (`0.0 ..= 1.0`); `None` when empty or when the quantile lands in
    /// the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return *bound;
            }
        }
        None
    }
}

/// The named-instrument registry: get-or-create [`Counter`]s, [`Gauge`]s
/// and [`Histogram`]s by name, snapshot them all at once.
///
/// Lookup takes a short lock; hot paths should resolve their instrument
/// once and cache the `Arc`.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The nanosecond-latency histogram named `name`
    /// ([`Histogram::exponential_ns`] buckets), created on first use.
    pub fn histogram_ns(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::exponential_ns());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// The histogram named `name` with the given inclusive upper
    /// `bounds`, created on first use.  Like every get-or-create in the
    /// registry, an existing instrument wins: the bounds of later callers
    /// are ignored, so all callers of one name should agree on them.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(bounds));
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Copy out every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").incr();
        reg.counter("b").incr();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.counter("c"), None);
    }

    #[test]
    fn gauge_set_and_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.record_max(3);
        assert_eq!(g.get(), 5, "max does not lower");
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper_bound() {
        let h = Histogram::new(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(Some(10), 2), (Some(100), 2), (None, 2)]);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 10 + 11 + 100 + 101 + 5_000);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new(&[10, 100, 1_000]);
        for _ in 0..90 {
            h.record(7); // ≤ 10
        }
        for _ in 0..10 {
            h.record(500); // ≤ 1_000
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(10));
        assert_eq!(s.quantile(0.9), Some(10));
        assert_eq!(s.quantile(0.95), Some(1_000));
        assert_eq!(s.quantile(1.0), Some(1_000));
        assert_eq!(s.mean(), (90 * 7 + 10 * 500) / 100);
    }

    #[test]
    fn quantile_overflow_bucket_is_none() {
        let h = Histogram::new(&[10]);
        h.record(1_000_000);
        assert_eq!(h.snapshot().quantile(0.5), None, "overflow has no bound");
        let empty = Histogram::new(&[10]);
        assert_eq!(empty.snapshot().quantile(0.5), None);
    }

    #[test]
    fn exponential_ns_covers_microsecond_to_second() {
        let h = Histogram::exponential_ns();
        h.record(1_500); // ~1.5 µs
        h.record(2_000_000); // 2 ms
        h.record(2_000_000_000); // 2 s → overflow
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.last().unwrap().0, None);
        assert_eq!(s.buckets.last().unwrap().1, 1, "2 s lands in overflow");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[10, 10]);
    }
}
