//! Cross-crate integration of the three MCA substrates: MRAPI resources
//! feeding MCAPI transport feeding MTAPI task execution — the full standard
//! stack the paper's §2B describes, cooperating in one process.

use openmp_mca::mcapi::{pktchan, sclchan, McapiDomain};
use openmp_mca::mrapi::sync::MutexAttributes;
use openmp_mca::mrapi::{DomainId, MrapiSystem, NodeId, ShmemAttributes, MRAPI_TIMEOUT_INFINITE};
use openmp_mca::mtapi::Mtapi;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn mrapi_nodes_exchange_through_mcapi_channels() {
    // Two MRAPI worker nodes, wired with an MCAPI packet channel: the
    // consumer checks order and integrity.
    let sys = MrapiSystem::new_t4240();
    let master = sys.initialize(DomainId(1), NodeId(0)).unwrap();

    let dom = McapiDomain::new(9);
    let prod_ep = dom.initialize(10).unwrap().create_endpoint(1).unwrap();
    let cons_ep = dom.initialize(11).unwrap().create_endpoint(1).unwrap();
    let (tx, rx) = pktchan::connect(&prod_ep, &cons_ep).unwrap();

    let producer = master
        .thread_create(NodeId(1), move |_| {
            for i in 0..500u32 {
                tx.send(&i.to_le_bytes()).unwrap();
            }
            tx.close();
        })
        .unwrap();
    let consumer = master
        .thread_create(NodeId(2), move |_| {
            let mut next = 0u32;
            while let Ok(p) = rx.recv_timeout(Duration::from_secs(10)) {
                assert_eq!(p, next.to_le_bytes());
                next += 1;
            }
            next
        })
        .unwrap();
    producer.join().unwrap();
    assert_eq!(consumer.join().unwrap(), 500);
    assert_eq!(sys.node_count(DomainId(1)), 1, "worker nodes finalized");
}

#[test]
fn mtapi_tasks_use_mrapi_shared_memory() {
    // MTAPI actions accumulate into an MRAPI heap-backed segment guarded by
    // an MRAPI mutex — three standards in one dataflow.
    let sys = MrapiSystem::new_t4240();
    let node = sys.initialize(DomainId(1), NodeId(0)).unwrap();
    let shm = Arc::new(
        node.shmem_create(
            1,
            8,
            &ShmemAttributes {
                use_malloc: true,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let mutex = Arc::new(node.mutex_create(1, &MutexAttributes::default()).unwrap());

    let mt = Mtapi::initialize(1, 0, 3).unwrap();
    let shm2 = Arc::clone(&shm);
    let mutex2 = Arc::clone(&mutex);
    mt.create_action(1, move |input| {
        let add = u64::from_le_bytes(input.try_into().unwrap());
        let key = mutex2.lock(MRAPI_TIMEOUT_INFINITE).unwrap();
        let v = shm2.read_u64(0);
        shm2.write_u64(0, v + add);
        mutex2.unlock(&key).unwrap();
        vec![]
    })
    .unwrap();

    let job = mt.job(1).unwrap();
    let group = mt.create_group();
    for i in 1..=100u64 {
        job.start_in_group(&group, i.to_le_bytes().to_vec())
            .unwrap();
    }
    group.wait_all(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(shm.read_u64(0), 5050);
    assert_eq!(mt.tasks_executed(), 100);
}

#[test]
fn scalar_doorbells_synchronize_remote_memory_pipeline() {
    // The heterogeneous-offload pattern from the example, as a test:
    // rmem DMA staging + scalar-channel doorbells, repeated.
    let sys = MrapiSystem::new_t4240();
    let host = sys.initialize(DomainId(1), NodeId(0)).unwrap();
    let rmem = host.rmem_create(3, 1024, &Default::default()).unwrap();

    let dom = McapiDomain::new(2);
    let h = dom.initialize(0).unwrap();
    let d = dom.initialize(1).unwrap();
    let (go_tx, go_rx) = sclchan::connect(
        &h.create_endpoint(1).unwrap(),
        &d.create_endpoint(1).unwrap(),
    )
    .unwrap();
    let (done_tx, done_rx) = sclchan::connect(
        &d.create_endpoint(2).unwrap(),
        &h.create_endpoint(2).unwrap(),
    )
    .unwrap();

    let dsp = host
        .thread_create(NodeId(1), move |me| {
            let rmem = me.rmem_get(3).unwrap();
            let mut sum = 0u64;
            loop {
                let n = go_rx.recv_u32(Some(Duration::from_secs(10))).unwrap();
                if n == 0 {
                    break;
                }
                let mut buf = vec![0u8; n as usize];
                rmem.read(0, &mut buf).unwrap();
                sum += buf.iter().map(|&b| b as u64).sum::<u64>();
                done_tx.send_u64(sum).unwrap();
            }
            sum
        })
        .unwrap();

    let mut expect = 0u64;
    for round in 1..=5u32 {
        let payload = vec![round as u8; 100 * round as usize];
        expect += payload.iter().map(|&b| b as u64).sum::<u64>();
        rmem.write(0, &payload).unwrap();
        go_tx.send_u32(payload.len() as u32).unwrap();
        let echoed = done_rx.recv_u64(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(echoed, expect, "round {round}");
    }
    go_tx.send_u32(0).unwrap();
    assert_eq!(dsp.join().unwrap(), expect);
    assert!(sys.simulated_transfer_ns() > 0, "DMA costs were accounted");
}

#[test]
fn hypervisor_partitions_and_metadata_stay_consistent() {
    use openmp_mca::platform::partition::{GuestKind, Hypervisor, PartitionSpec};
    use openmp_mca::platform::Topology;

    let topo = Topology::t4240rdb();
    let mut hv = Hypervisor::new(topo.clone());
    hv.create_partition(&PartitionSpec {
        name: "linux".into(),
        hw_threads: 20,
        memory_bytes: 1 << 30,
        guest: GuestKind::Linux,
    })
    .unwrap();
    hv.create_partition(&PartitionSpec {
        name: "dsp".into(),
        hw_threads: 4,
        memory_bytes: 256 << 20,
        guest: GuestKind::BareMetal,
    })
    .unwrap();
    let used: usize = hv.partitions().iter().map(|p| p.hw_threads.len()).sum();
    assert_eq!(used, topo.num_hw_threads());

    // MRAPI metadata still reports the full machine (the hypervisor view
    // is orthogonal to the resource tree).
    let sys = MrapiSystem::new(topo);
    let n = sys.initialize(DomainId(1), NodeId(0)).unwrap();
    assert_eq!(n.online_processors().unwrap(), 24);
}
