//! Job lifecycle supervision, end to end against a live server: the
//! three kill paths (deadline, panic, wedged-backend escalation), the
//! idempotent-retry contract, and the `watchdog.*` metrics that make all
//! of it observable.

use std::sync::Arc;
use std::time::Duration;

use mca_mrapi::{FaultPlan, FaultProbe, FaultSite, MrapiStatus, MrapiSystem};
use romp::{BackendKind, Config, McaBackend, McaOptions, RetryPolicy, Runtime};
use romp_epcc::Construct;
use romp_serve::{
    Client, DiagSpec, JobLimits, JobSpec, JobState, ServeConfig, Server, SubmitOptions,
    SubmitOutcome,
};

fn diag_config() -> ServeConfig {
    ServeConfig {
        limits: JobLimits {
            allow_diag: true,
            ..JobLimits::default()
        },
        watchdog_interval_ms: 2,
        escalation_grace_ms: 100,
        ..ServeConfig::default()
    }
}

fn healthy_job() -> JobSpec {
    JobSpec::Epcc {
        construct: Construct::Barrier,
        threads: 2,
        inner_reps: 2,
    }
}

/// Kill path (a): a job that outlives its deadline is cancelled by the
/// watchdog, reported `TimedOut`, and later jobs are unaffected.
#[test]
fn deadline_kills_overrunning_job_and_serving_continues() {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let handle = Server::start("127.0.0.1:0", diag_config(), rt).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    // Would spin for 30s; the 100ms deadline must win.
    let spec = JobSpec::Diag {
        diag: DiagSpec::Spin { ms: 30_000 },
        threads: 2,
    };
    let opts = SubmitOptions {
        deadline_ms: 100,
        ..SubmitOptions::default()
    };
    let SubmitOutcome::Accepted(id) = c.submit_opts(&spec, opts).unwrap() else {
        panic!("spin job refused");
    };
    let out = c.wait_result(id, Duration::from_secs(30)).unwrap();
    assert!(!out.ok, "deadline-killed job must not verify ok");
    assert!(
        out.detail.contains("deadline"),
        "outcome names the deadline: {}",
        out.detail
    );

    // The pool is healthy: a normal job right after completes fine.
    let (id, _) = c
        .submit_with_retry(&healthy_job(), Duration::from_secs(10))
        .unwrap()
        .unwrap();
    assert!(c.wait_result(id, Duration::from_secs(30)).unwrap().ok);

    // The kill is visible in the watchdog metrics.
    let stats = c.stats().unwrap();
    assert!(
        stats.contains("\"watchdog.deadline_fired\":"),
        "stats expose watchdog counters: {stats}"
    );
    assert!(!stats.contains("\"watchdog.deadline_fired\":0"));

    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.timed_out, 1, "{report:?}");
    assert_eq!(report.dropped, 0, "{report:?}");
}

/// Kill path (b): a job that panics inside the runtime is isolated — the
/// dispatcher reports `Failed` with the panic message and keeps serving.
#[test]
fn panicking_job_is_isolated_and_reported() {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let handle = Server::start("127.0.0.1:0", diag_config(), rt).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    let spec = JobSpec::Diag {
        diag: DiagSpec::Panic,
        threads: 2,
    };
    let SubmitOutcome::Accepted(id) = c.submit(&spec).unwrap() else {
        panic!("panic job refused");
    };
    let out = c.wait_result(id, Duration::from_secs(30)).unwrap();
    assert!(!out.ok);
    assert!(
        out.detail.contains("panicked") && out.detail.contains("diag: deliberate panic"),
        "outcome carries the panic payload: {}",
        out.detail
    );

    // The server survived its tenant: later jobs still complete.
    for _ in 0..3 {
        let (id, _) = c
            .submit_with_retry(&healthy_job(), Duration::from_secs(10))
            .unwrap()
            .unwrap();
        assert!(c.wait_result(id, Duration::from_secs(30)).unwrap().ok);
    }

    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.failed, 1, "{report:?}");
    assert_eq!(report.completed, 3, "{report:?}");
    assert_eq!(report.dropped, 0, "{report:?}");
}

/// Kill path (c): a job wedged inside a persistently-faulted MRAPI mutex
/// cannot reach a cancellation checkpoint on its own.  The watchdog
/// observes zero progress after the deadline cancel, escalates by
/// poisoning the backend, the wedged lock falls over to the native
/// fallback, and the job finally unwinds as `TimedOut` — while the
/// degraded server keeps serving.  Also proves the idempotent-submit
/// contract: retrying the same key returns the original job id.
#[test]
fn wedged_backend_job_is_escalated_to_fallback() {
    let sys = MrapiSystem::new_t4240();
    let be = McaBackend::with_options(
        sys.clone(),
        McaOptions {
            lock_timeout: Duration::from_millis(10),
            retry: RetryPolicy::default(),
        },
    )
    .unwrap();
    let rt = Runtime::with_config_and_backend(
        Config::default().with_backend(BackendKind::Mca),
        Box::new(be),
    )
    .unwrap();
    let handle = Server::start("127.0.0.1:0", diag_config(), rt).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    // From now on every MRAPI mutex lock times out — a critical section
    // entered after this point spins in the retry loop forever (the lock
    // classifies timeouts as contention, so it will not self-degrade).
    let plan = Arc::new(FaultPlan::new(0x5E12_0005).with_persistent(
        FaultSite::MutexLock,
        MrapiStatus::Timeout,
        0,
    ));
    sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));

    let spec = JobSpec::Diag {
        diag: DiagSpec::CriticalLoop { ms: 50 },
        threads: 2,
    };
    let opts = SubmitOptions {
        deadline_ms: 150,
        idem_key: 0xA11C_E555,
        affinity: 0,
        priority: 0,
    };
    let SubmitOutcome::Accepted(id) = c.submit_opts(&spec, opts).unwrap() else {
        panic!("critical-loop job refused");
    };

    // Idempotency: re-submitting the same key while the job is in flight
    // returns the original id instead of admitting a duplicate.
    let SubmitOutcome::Accepted(dup) = c.submit_opts(&spec, opts).unwrap() else {
        panic!("idempotent retry refused");
    };
    assert_eq!(dup, id, "idempotent retry returns the original job id");

    // deadline (150ms) + grace (100ms) + margin: the watchdog must have
    // escalated and the job unwound well within this window.
    let out = c.wait_result(id, Duration::from_secs(60)).unwrap();
    assert!(!out.ok);
    assert!(
        out.detail.contains("deadline"),
        "escalated job reports its deadline: {}",
        out.detail
    );

    // Escalation degraded the runtime to the native fallback...
    assert!(
        handle.runtime().degraded(),
        "watchdog escalation must poison the wedged backend"
    );
    // ...and it is visible in the metrics.
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"watchdog.escalations\":"), "{stats}");
    assert!(!stats.contains("\"watchdog.escalations\":0"), "{stats}");

    // The degraded server still serves (locks now come from the native
    // chain even though the MRAPI fault is still armed).
    let (id, _) = c
        .submit_with_retry(&healthy_job(), Duration::from_secs(10))
        .unwrap()
        .unwrap();
    assert!(c.wait_result(id, Duration::from_secs(30)).unwrap().ok);

    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.timed_out, 1, "{report:?}");
    assert_eq!(report.dropped, 0, "{report:?}");
}

/// Measurement harness for the EXPERIMENTS.md cancellation-latency
/// table — not an assertion-style test.  Run with:
///
/// ```text
/// cargo test --release --offline --test supervision -- --ignored --nocapture
/// ```
#[test]
#[ignore = "measurement harness, run explicitly with --ignored"]
fn measure_cancellation_latency() {
    fn quantile(sorted_us: &[u64], q: f64) -> u64 {
        let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
        sorted_us[idx]
    }

    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let handle = Server::start("127.0.0.1:0", diag_config(), rt).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let spin = JobSpec::Diag {
        diag: DiagSpec::Spin { ms: 30_000 },
        threads: 2,
    };

    // (1) Explicit cancel: request → terminal result observed by client.
    let mut cancel_us = Vec::new();
    for _ in 0..50 {
        let SubmitOutcome::Accepted(id) = c.submit(&spin).unwrap() else {
            panic!("refused");
        };
        // Let the job actually start spinning.
        std::thread::sleep(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        c.cancel(id).unwrap();
        let out = c.wait_result(id, Duration::from_secs(30)).unwrap();
        assert!(!out.ok);
        cancel_us.push(t0.elapsed().as_micros() as u64);
    }
    cancel_us.sort_unstable();

    // (2) Deadline overshoot: how far past the deadline the TimedOut
    // result lands (watchdog tick + unwind + fetch).
    let mut overshoot_us = Vec::new();
    for _ in 0..50 {
        let opts = SubmitOptions {
            deadline_ms: 20,
            ..SubmitOptions::default()
        };
        let t0 = std::time::Instant::now();
        let SubmitOutcome::Accepted(id) = c.submit_opts(&spin, opts).unwrap() else {
            panic!("refused");
        };
        let out = c.wait_result(id, Duration::from_secs(30)).unwrap();
        assert!(!out.ok);
        overshoot_us.push(t0.elapsed().as_micros().saturating_sub(20_000) as u64);
    }
    overshoot_us.sort_unstable();

    println!("| path | p50 | p99 | max |");
    println!("|---|---|---|---|");
    println!(
        "| explicit cancel -> result | {} us | {} us | {} us |",
        quantile(&cancel_us, 0.5),
        quantile(&cancel_us, 0.99),
        cancel_us.last().unwrap()
    );
    println!(
        "| deadline overshoot -> result | {} us | {} us | {} us |",
        quantile(&overshoot_us, 0.5),
        quantile(&overshoot_us, 0.99),
        overshoot_us.last().unwrap()
    );

    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.dropped, 0);
}

/// Explicit cancellation: a client-side `cancel` lands as the
/// `Cancelled` terminal state (not `TimedOut`), is idempotent, and a
/// cancel of an unknown or already-fetched job is a typed error.
#[test]
fn explicit_cancel_is_terminal_and_idempotent() {
    let rt = Runtime::with_backend(BackendKind::Native).unwrap();
    let handle = Server::start("127.0.0.1:0", diag_config(), rt).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();

    let spec = JobSpec::Diag {
        diag: DiagSpec::Spin { ms: 30_000 },
        threads: 2,
    };
    let SubmitOutcome::Accepted(id) = c.submit(&spec).unwrap() else {
        panic!("spin job refused");
    };
    let state = c.cancel(id).unwrap();
    assert!(
        matches!(
            state,
            JobState::Cancelled | JobState::Cancelling | JobState::Queued
        ),
        "cancel acknowledged with a sensible state, got {state:?}"
    );
    // Idempotent: a second cancel is acknowledged, not an error.
    c.cancel(id).unwrap();

    let out = c.wait_result(id, Duration::from_secs(30)).unwrap();
    assert!(!out.ok);
    assert!(out.detail.contains("cancel"), "{}", out.detail);

    // The entry is consumed; cancelling it now is UnknownJob.
    assert!(c.cancel(id).is_err(), "cancel after fetch is an error");
    assert!(c.cancel(0xDEAD_BEEF).is_err(), "cancel of unknown id");

    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.cancelled, 1, "{report:?}");
    assert_eq!(report.dropped, 0, "{report:?}");
}
