//! Cross-crate integration: the whole reproduction stack end-to-end.
//!
//! These tests exercise the paper's complete story in one process: the
//! simulated board, MRAPI plumbing, the MCA-backed OpenMP runtime, the
//! validation suite (§6A), EPCC (Table I) and the NAS kernels (Figure 4).

use openmp_mca::epcc::{measure, Construct, EpccConfig};
use openmp_mca::npb::{Class, NpbKernel};
use openmp_mca::platform::vtime::CostModel;
use openmp_mca::romp::{BackendKind, Config, Runtime};
use openmp_mca::validation::run_suite;

#[test]
fn validation_suite_passes_on_both_backends() {
    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        let report = run_suite(&rt, &[1, 4]);
        assert!(report.all_passed(), "{}", report.summary());
    }
}

#[test]
fn nas_kernels_verify_on_the_mca_backend() {
    // The paper's experiment: NAS workloads on the MCA-backed runtime.
    // Class S keeps this fast enough for CI; the bench harness runs W/A.
    let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
    for kernel in NpbKernel::all() {
        let res = kernel.run(&rt, 4, Class::S);
        assert!(
            res.verified(),
            "{} failed: {:?}",
            kernel.name(),
            res.verification
        );
        assert!(res.wall_s > 0.0);
        assert!(res.mops > 0.0);
    }
}

#[test]
fn nas_results_agree_across_backends() {
    let native = Runtime::with_backend(BackendKind::Native).unwrap();
    let mca = Runtime::with_backend(BackendKind::Mca).unwrap();
    // EP's sums are integer-histogram exact across backends.
    let a = openmp_mca::npb::ep::run_with_m(&native, 3, 17);
    let b = openmp_mca::npb::ep::run_with_m(&mca, 3, 17);
    assert_eq!(a.q, b.q);
}

#[test]
fn epcc_overheads_measure_on_both_backends() {
    let cfg = EpccConfig::quick(3);
    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        for c in Construct::table1() {
            let m = measure(&rt, c, &cfg);
            assert!(m.test_us.is_finite() && m.test_us > 0.0, "{kind:?}/{c:?}");
        }
    }
}

#[test]
fn figure4_profile_feeds_the_board_model() {
    // End-to-end virtual-time path: profile a real kernel run, model the
    // board, and check the headline shapes (EP near-ideal at 24 threads;
    // serial == baseline).
    let rt = Runtime::with_config(
        Config::default()
            .with_backend(BackendKind::Mca)
            .with_profiling(true),
    )
    .unwrap();
    let model = CostModel::t4240rdb();

    rt.reset_profile();
    let _ = NpbKernel::Ep.run(&rt, 1, Class::S);
    let serial = rt.take_profile();
    let t1 = model.elapsed_ns(&serial, NpbKernel::Ep.beta());

    rt.reset_profile();
    let _ = NpbKernel::Ep.run(&rt, 24, Class::S);
    let par = rt.take_profile();
    assert_eq!(par.num_workers(), 24);
    let t24 = model.elapsed_ns(&par, NpbKernel::Ep.beta());

    let speedup = t1 / t24;
    assert!(
        speedup > 12.0 && speedup < 24.5,
        "EP modeled speedup at 24 threads should be near-ideal (paper Fig. 4): {speedup}"
    );
}

#[test]
fn mca_backend_sizes_team_from_board_metadata() {
    // §5B.4 end-to-end: the default team on the MCA backend is the modeled
    // board's 24 hardware threads, regardless of the host.
    let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
    assert_eq!(rt.max_threads(), 24);
    let counted = std::sync::atomic::AtomicUsize::new(0);
    rt.parallel(0, |w| {
        if w.is_master() {
            counted.store(w.num_threads(), std::sync::atomic::Ordering::Relaxed);
        }
    });
    assert_eq!(counted.load(std::sync::atomic::Ordering::Relaxed), 24);
}

#[test]
fn environment_selects_the_backend() {
    // ROMP_BACKEND is the reproduction's toolchain switch.
    let cfg = Config::from_vars(|k| (k == "ROMP_BACKEND").then(|| "mca".to_string()));
    let rt = Runtime::with_config(cfg).unwrap();
    assert_eq!(rt.backend_kind(), BackendKind::Mca);
}
