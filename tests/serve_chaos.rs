//! Serving under injected faults: a persistent MRAPI failure armed while
//! the server is under concurrent mixed load must flip the runtime from
//! the MCA backend to native (DESIGN.md §5) without losing a single
//! accepted job — clients keep getting correct results across the swap.

use std::sync::Arc;
use std::time::Duration;

use mca_mrapi::{FaultPlan, FaultProbe, FaultSite, MrapiStatus, MrapiSystem};
use romp::{BackendKind, Config, McaBackend, McaOptions, RetryPolicy, Runtime};
use romp_serve::{Client, JobLimits, ServeConfig, Server};
use romp_validation::serveload::drive_mixed_load;

#[test]
fn mid_load_fault_degrades_backend_without_losing_jobs() {
    // An MCA-backed runtime whose MRAPI system we keep a handle to, so a
    // fault plan can be armed *after* the server is already serving.
    let sys = MrapiSystem::new_t4240();
    let be = McaBackend::with_options(
        sys.clone(),
        McaOptions {
            lock_timeout: Duration::from_millis(10),
            retry: RetryPolicy::default(),
        },
    )
    .unwrap();
    let rt = Runtime::with_config_and_backend(
        Config::default().with_backend(BackendKind::Mca),
        Box::new(be),
    )
    .unwrap();

    let handle = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            queue_cap: 64,
            limits: JobLimits::default(),
            ..ServeConfig::default()
        },
        rt,
    )
    .unwrap();
    let addr = handle.addr();

    // Phase A — healthy MCA serving: everything completes, nothing
    // degraded.
    let calm = drive_mixed_load(addr, 4, 6);
    assert_eq!(calm.lost(), 0, "healthy phase lost jobs: {calm:?}");
    assert_eq!(calm.failed, 0, "healthy phase failed jobs: {calm:?}");
    assert!(!handle.runtime().degraded(), "no faults injected yet");
    assert_eq!(handle.runtime().backend_kind(), BackendKind::Mca);

    // Phase B — arm a genuinely persistent shared-memory failure while a
    // bigger load wave is in flight.  Every shmem_create from that moment
    // on reports ERR_MEM_LIMIT, which retries cannot absorb; the runtime
    // must heal by swapping to the native backend mid-wave.
    let loader = std::thread::spawn(move || drive_mixed_load(addr, 4, 20));
    std::thread::sleep(Duration::from_millis(50));
    let plan = Arc::new(FaultPlan::new(0x5E12_7E57).with_persistent(
        FaultSite::ShmemCreate,
        MrapiStatus::ErrMemLimit,
        0,
    ));
    sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
    let stormy = loader.join().expect("load wave panicked");
    assert_eq!(stormy.lost(), 0, "fault wave lost jobs: {stormy:?}");
    assert_eq!(
        stormy.failed, 0,
        "fallback must keep results correct: {stormy:?}"
    );

    // Phase C — a follow-up wave guarantees post-arming traffic even if
    // wave B raced the probe installation, and proves the degraded
    // server still serves.
    let after = drive_mixed_load(addr, 2, 6);
    assert_eq!(after.lost(), 0, "degraded phase lost jobs: {after:?}");
    assert_eq!(after.failed, 0, "degraded phase failed jobs: {after:?}");

    assert!(
        handle.runtime().degraded(),
        "persistent fault under load must degrade the runtime"
    );
    assert_eq!(
        handle.runtime().backend_kind(),
        BackendKind::Native,
        "runtime reports the fallback backend"
    );

    // The stats endpoint documents the degradation for operators.
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert!(
        stats.contains("\"degraded\": true") || stats.contains("\"degraded\":true"),
        "stats must surface the degradation: {stats}"
    );

    // Graceful drain: the fault never costs an accepted job.
    c.shutdown().unwrap();
    let report = handle.join();
    assert_eq!(report.dropped, 0, "drain dropped jobs: {report:?}");
    assert_eq!(report.failed, 0);
    assert_eq!(
        report.accepted,
        calm.accepted + stormy.accepted + after.accepted
    );
    assert_eq!(report.completed, report.accepted);
}
