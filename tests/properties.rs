//! Property-based integration tests: invariants that must hold for
//! arbitrary inputs across the whole stack.

use openmp_mca::mrapi::{DomainId, MrapiSystem, NodeId, ShmemAttributes};
use openmp_mca::npb::is::{rank_keys, sort_protocol};
use openmp_mca::romp::{BackendKind, ReduceOp, Runtime, Schedule};
use proptest::prelude::*;

fn native_rt() -> Runtime {
    Runtime::with_backend(BackendKind::Native).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every schedule covers every iteration of an arbitrary range exactly
    /// once, for arbitrary team sizes.
    #[test]
    fn worksharing_tiles_arbitrary_ranges(
        start in 0u64..1000,
        len in 0u64..400,
        threads in 1usize..7,
        sched_pick in 0usize..4,
    ) {
        let sched = [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(3) },
            Schedule::Dynamic { chunk: 5 },
            Schedule::Guided { chunk: 2 },
        ][sched_pick];
        let rt = native_rt();
        let marks: Vec<std::sync::atomic::AtomicU32> =
            (0..len).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
        rt.parallel(threads, |w| {
            w.for_range(start..start + len, sched, |i| {
                marks[(i - start) as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        });
        for (i, m) in marks.iter().enumerate() {
            prop_assert_eq!(m.load(std::sync::atomic::Ordering::Relaxed), 1, "iteration {}", i);
        }
    }

    /// Parallel reduction equals the serial fold for arbitrary data.
    #[test]
    fn reduction_equals_serial_fold(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let rt = native_rt();
        let n = values.len() as u64;
        let expect: u64 = values.iter().sum();
        let got = rt.parallel_reduce_sum(4, 0..n, |i| values[i as usize]);
        prop_assert_eq!(got, expect);
    }

    /// The worker-level min/max reductions agree with iterator folds.
    #[test]
    fn min_max_reductions(values in proptest::collection::vec(0u64..u64::MAX, 2..9)) {
        let rt = native_rt();
        let n = values.len();
        let out = std::sync::Mutex::new((0u64, 0u64));
        let vals = values.clone();
        rt.parallel(n, |w| {
            let mine = vals[w.thread_num()];
            let mn = w.reduce_u64(mine, ReduceOp::Min);
            let mx = w.reduce_u64(mine, ReduceOp::Max);
            if w.is_master() {
                *out.lock().unwrap() = (mn, mx);
            }
        });
        let (mn, mx) = *out.lock().unwrap();
        prop_assert_eq!(mn, *values.iter().min().unwrap());
        prop_assert_eq!(mx, *values.iter().max().unwrap());
    }

    /// IS ranking sorts arbitrary key sets into a permutation, at any team
    /// size.
    #[test]
    fn is_sorts_arbitrary_keys(
        keys in proptest::collection::vec(0u32..512, 30..300),
        threads in 1usize..5,
    ) {
        let rt = native_rt();
        let max_key = 512usize;
        let t = [1, 2, 3, 4, 5];
        let out = sort_protocol(&rt, threads, keys.clone(), max_key, &t);
        prop_assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = keys.clone();
        // Replay the perturbation protocol before comparing multisets.
        for it in 1..=10usize {
            expect[it] = it as u32;
            expect[it + 10] = (max_key - it) as u32;
        }
        expect.sort_unstable();
        prop_assert_eq!(out.sorted, expect);
    }

    /// Ranks really are "count of strictly smaller keys".
    #[test]
    fn ranks_are_exclusive_prefix_counts(keys in proptest::collection::vec(0u32..128, 1..200)) {
        let rt = native_rt();
        let ranks = rank_keys(&rt, 3, &keys, 128);
        for k in 0..128u32 {
            let want = keys.iter().filter(|&&x| x < k).count() as u32;
            prop_assert_eq!(ranks[k as usize], want, "key {}", k);
        }
    }

    /// MRAPI shared memory round-trips arbitrary byte strings at arbitrary
    /// offsets.
    #[test]
    fn shmem_roundtrips_bytes(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        offset in 0usize..64,
    ) {
        let sys = MrapiSystem::new_t4240();
        let node = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let shm = node
            .shmem_create(1, offset + data.len(), &ShmemAttributes { use_malloc: true, ..Default::default() })
            .unwrap();
        shm.write_bytes(offset, &data);
        let mut out = vec![0u8; data.len()];
        shm.read_bytes(offset, &mut out);
        prop_assert_eq!(out, data);
    }

    /// MCAPI messages preserve content and per-priority FIFO order.
    #[test]
    fn mcapi_fifo_per_priority(msgs in proptest::collection::vec((any::<u8>(), 0u8..4), 1..60)) {
        use openmp_mca::mcapi::McapiDomain;
        let dom = McapiDomain::new(1);
        let a = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let b = dom.initialize(1).unwrap().create_endpoint_with_capacity(1, 256).unwrap();
        for (byte, prio) in &msgs {
            a.msg_send(b.addr(), &[*byte], *prio).unwrap();
        }
        // Drain: priorities ascend; within a priority, send order holds.
        let mut received: Vec<(u8, u8)> = Vec::new();
        while let Ok((data, prio)) = b.try_msg_recv() {
            received.push((data[0], prio));
        }
        prop_assert_eq!(received.len(), msgs.len());
        prop_assert!(received.windows(2).all(|w| w[0].1 <= w[1].1), "priority order");
        for p in 0u8..4 {
            let sent: Vec<u8> =
                msgs.iter().filter(|(_, q)| *q == p).map(|(b, _)| *b).collect();
            let got: Vec<u8> =
                received.iter().filter(|(_, q)| *q == p).map(|(b, _)| *b).collect();
            prop_assert_eq!(got, sent, "priority {}", p);
        }
    }
}
