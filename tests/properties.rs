//! Property-based integration tests: invariants that must hold for
//! arbitrary inputs across the whole stack.  Inputs are drawn from a
//! fixed-seed [`SmallRng`], so every run explores the same case set —
//! reproducible and free of external test-framework dependencies.

use mca_sync::rng::SmallRng;
use openmp_mca::mrapi::{DomainId, MrapiSystem, NodeId, ShmemAttributes};
use openmp_mca::npb::is::{rank_keys, sort_protocol};
use openmp_mca::romp::{BackendKind, ReduceOp, Runtime, Schedule};

const CASES: usize = 16;

fn native_rt() -> Runtime {
    Runtime::with_backend(BackendKind::Native).unwrap()
}

fn vec_u64(rng: &mut SmallRng, lo: u64, hi: u64, min_len: usize, max_len: usize) -> Vec<u64> {
    let len = rng.gen_index(min_len, max_len);
    (0..len).map(|_| rng.gen_range(lo, hi)).collect()
}

fn vec_u32(rng: &mut SmallRng, hi: u32, min_len: usize, max_len: usize) -> Vec<u32> {
    let len = rng.gen_index(min_len, max_len);
    (0..len)
        .map(|_| rng.gen_range(0, hi as u64) as u32)
        .collect()
}

/// Every schedule covers every iteration of an arbitrary range exactly
/// once, for arbitrary team sizes.
#[test]
fn worksharing_tiles_arbitrary_ranges() {
    let mut rng = SmallRng::seed_from_u64(0x9a09_0001);
    for _ in 0..CASES {
        let start = rng.gen_range(0, 1000);
        let len = rng.gen_range(0, 400);
        let threads = rng.gen_index(1, 7);
        let sched = [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(3) },
            Schedule::Dynamic { chunk: 5 },
            Schedule::Guided { chunk: 2 },
        ][rng.gen_index(0, 4)];
        let rt = native_rt();
        let marks: Vec<std::sync::atomic::AtomicU32> = (0..len)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        rt.parallel(threads, |w| {
            w.for_range(start..start + len, sched, |i| {
                marks[(i - start) as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        });
        for (i, m) in marks.iter().enumerate() {
            assert_eq!(
                m.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "iteration {i} under {sched:?} x{threads}"
            );
        }
    }
}

/// Parallel reduction equals the serial fold for arbitrary data.
#[test]
fn reduction_equals_serial_fold() {
    let mut rng = SmallRng::seed_from_u64(0x9a09_0002);
    for _ in 0..CASES {
        let values = vec_u64(&mut rng, 0, 1_000_000, 1, 200);
        let rt = native_rt();
        let n = values.len() as u64;
        let expect: u64 = values.iter().sum();
        let got = rt.parallel_reduce_sum(4, 0..n, |i| values[i as usize]);
        assert_eq!(got, expect);
    }
}

/// The worker-level min/max reductions agree with iterator folds.
#[test]
fn min_max_reductions() {
    let mut rng = SmallRng::seed_from_u64(0x9a09_0003);
    for _ in 0..CASES {
        let values = vec_u64(&mut rng, 0, u64::MAX, 2, 9);
        let rt = native_rt();
        let n = values.len();
        let out = std::sync::Mutex::new((0u64, 0u64));
        let vals = values.clone();
        rt.parallel(n, |w| {
            let mine = vals[w.thread_num()];
            let mn = w.reduce_u64(mine, ReduceOp::Min);
            let mx = w.reduce_u64(mine, ReduceOp::Max);
            if w.is_master() {
                *out.lock().unwrap() = (mn, mx);
            }
        });
        let (mn, mx) = *out.lock().unwrap();
        assert_eq!(mn, *values.iter().min().unwrap());
        assert_eq!(mx, *values.iter().max().unwrap());
    }
}

/// IS ranking sorts arbitrary key sets into a permutation, at any team
/// size.
#[test]
fn is_sorts_arbitrary_keys() {
    let mut rng = SmallRng::seed_from_u64(0x9a09_0004);
    for _ in 0..CASES {
        let keys = vec_u32(&mut rng, 512, 30, 300);
        let threads = rng.gen_index(1, 5);
        let rt = native_rt();
        let max_key = 512usize;
        let t = [1, 2, 3, 4, 5];
        let out = sort_protocol(&rt, threads, keys.clone(), max_key, &t);
        assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = keys.clone();
        // Replay the perturbation protocol before comparing multisets.
        for it in 1..=10usize {
            expect[it] = it as u32;
            expect[it + 10] = (max_key - it) as u32;
        }
        expect.sort_unstable();
        assert_eq!(out.sorted, expect);
    }
}

/// Ranks really are "count of strictly smaller keys".
#[test]
fn ranks_are_exclusive_prefix_counts() {
    let mut rng = SmallRng::seed_from_u64(0x9a09_0005);
    for _ in 0..CASES {
        let keys = vec_u32(&mut rng, 128, 1, 200);
        let rt = native_rt();
        let ranks = rank_keys(&rt, 3, &keys, 128);
        for k in 0..128u32 {
            let want = keys.iter().filter(|&&x| x < k).count() as u32;
            assert_eq!(ranks[k as usize], want, "key {k}");
        }
    }
}

/// MRAPI shared memory round-trips arbitrary byte strings at arbitrary
/// offsets.
#[test]
fn shmem_roundtrips_bytes() {
    let mut rng = SmallRng::seed_from_u64(0x9a09_0006);
    for _ in 0..CASES {
        let len = rng.gen_index(1, 256);
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0, 256) as u8).collect();
        let offset = rng.gen_index(0, 64);
        let sys = MrapiSystem::new_t4240();
        let node = sys.initialize(DomainId(1), NodeId(0)).unwrap();
        let shm = node
            .shmem_create(
                1,
                offset + data.len(),
                &ShmemAttributes {
                    use_malloc: true,
                    ..Default::default()
                },
            )
            .unwrap();
        shm.write_bytes(offset, &data);
        let mut out = vec![0u8; data.len()];
        shm.read_bytes(offset, &mut out);
        assert_eq!(out, data);
    }
}

/// MCAPI messages preserve content and per-priority FIFO order.
#[test]
fn mcapi_fifo_per_priority() {
    let mut rng = SmallRng::seed_from_u64(0x9a09_0007);
    for _ in 0..CASES {
        use openmp_mca::mcapi::McapiDomain;
        let n_msgs = rng.gen_index(1, 60);
        let msgs: Vec<(u8, u8)> = (0..n_msgs)
            .map(|_| (rng.gen_range(0, 256) as u8, rng.gen_range(0, 4) as u8))
            .collect();
        let dom = McapiDomain::new(1);
        let a = dom.initialize(0).unwrap().create_endpoint(1).unwrap();
        let b = dom
            .initialize(1)
            .unwrap()
            .create_endpoint_with_capacity(1, 256)
            .unwrap();
        for (byte, prio) in &msgs {
            a.msg_send(b.addr(), &[*byte], *prio).unwrap();
        }
        // Drain: priorities ascend; within a priority, send order holds.
        let mut received: Vec<(u8, u8)> = Vec::new();
        while let Ok((data, prio)) = b.try_msg_recv() {
            received.push((data[0], prio));
        }
        assert_eq!(received.len(), msgs.len());
        assert!(
            received.windows(2).all(|w| w[0].1 <= w[1].1),
            "priority order"
        );
        for p in 0u8..4 {
            let sent: Vec<u8> = msgs
                .iter()
                .filter(|(_, q)| *q == p)
                .map(|(b, _)| *b)
                .collect();
            let got: Vec<u8> = received
                .iter()
                .filter(|(_, q)| *q == p)
                .map(|(b, _)| *b)
                .collect();
            assert_eq!(got, sent, "priority {p}");
        }
    }
}
