//! Cluster supervision under fire: SIGKILL a worker process mid-load
//! and prove zero lost jobs (orphans retried on the survivor, worker
//! respawned), then cycle the whole pool with an operator rolling
//! restart while load is still running.  The process-level companion to
//! `serve_chaos.rs` (DESIGN.md §5.12).

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

use romp::{Config, Runtime};
use romp_cluster::{ClusterConfig, Router};
use romp_serve::{Client, Dispatch, JobLimits, ServeConfig, Server};
use romp_validation::serveload::drive_mixed_load;

/// Locate the `romp-worker` binary for the active profile, building it
/// if the test run didn't (root `cargo test` compiles dependency crates
/// as libraries only).
fn ensure_worker_bin() -> PathBuf {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let target = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target");
    let bin = target.join(profile).join("romp-worker");
    if bin.is_file() {
        return bin;
    }
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR")).args([
        "build",
        "--offline",
        "-p",
        "romp-cluster",
        "--bin",
        "romp-worker",
    ]);
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    let status = cmd.status().expect("run cargo build for romp-worker");
    assert!(status.success(), "building romp-worker failed");
    assert!(bin.is_file(), "romp-worker missing after build: {bin:?}");
    bin
}

fn start_cluster(workers: usize) -> (romp_serve::ServerHandle, Arc<Router>) {
    let router = Router::new(ClusterConfig {
        workers,
        worker_bin: Some(ensure_worker_bin()),
        worker_threads: 2,
        heartbeat_ms: 20,
        heartbeat_misses: 15,
        ..ClusterConfig::default()
    })
    .expect("router setup");
    let rt = Runtime::with_config(Config::default().with_num_threads(2)).unwrap();
    let handle = Server::start_with_dispatch(
        "127.0.0.1:0",
        ServeConfig {
            queue_cap: 64,
            limits: JobLimits::default(),
            ..ServeConfig::default()
        },
        rt,
        Arc::clone(&router) as Arc<dyn Dispatch>,
    )
    .expect("server start");
    (handle, router)
}

fn wait_until(what: &str, timeout: Duration, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_worker_mid_load_loses_nothing() {
    let (handle, router) = start_cluster(2);
    let addr = handle.addr();
    wait_until("both workers up", Duration::from_secs(30), || {
        router.workers_up() == 2
    });

    // A load wave big enough to straddle the kill and the respawn.
    let loader = std::thread::spawn(move || drive_mixed_load(addr, 4, 25));
    std::thread::sleep(Duration::from_millis(300));

    // SIGKILL one live worker — no goodbye, no flush; the router sees
    // the wire channel die and must retry its in-flight jobs elsewhere.
    let victim = router
        .worker_pids()
        .into_iter()
        .find(|&pid| pid != 0)
        .expect("a live worker to kill");
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {victim} failed");

    let report = loader.join().expect("load wave panicked");
    assert_eq!(report.lost(), 0, "worker kill lost jobs: {report:?}");
    assert_eq!(
        report.failed, 0,
        "retried jobs must still verify: {report:?}"
    );

    assert!(router.restarts() >= 1, "the killed worker was respawned");
    wait_until("pool back to strength", Duration::from_secs(30), || {
        router.workers_up() == 2
    });
    assert!(
        !router.worker_pids().contains(&victim),
        "the victim pid must be gone from the pool"
    );

    // Drain: nothing dropped, no rmem result slot leaked.
    let mut c = Client::connect(addr).unwrap();
    c.shutdown().unwrap();
    let drain = handle.join();
    assert_eq!(drain.dropped, 0, "drain dropped jobs: {drain:?}");
    assert_eq!(drain.rmem_leaked, 0, "rmem slots leaked: {drain:?}");
    assert_eq!(
        drain.completed + drain.cancelled + drain.timed_out + drain.failed,
        drain.accepted
    );
}

#[test]
fn rolling_restart_under_load_loses_nothing() {
    let (handle, router) = start_cluster(2);
    let addr = handle.addr();
    wait_until("both workers up", Duration::from_secs(30), || {
        router.workers_up() == 2
    });
    let before: Vec<u32> = router.worker_pids();

    let loader = std::thread::spawn(move || drive_mixed_load(addr, 4, 20));
    std::thread::sleep(Duration::from_millis(200));

    // Operator-triggered rolling restart over the client protocol.
    let mut c = Client::connect(addr).unwrap();
    let n = c.restart().expect("restart accepted");
    assert_eq!(n, 2, "restart reports the pool width");

    let report = loader.join().expect("load wave panicked");
    assert_eq!(report.lost(), 0, "rolling restart lost jobs: {report:?}");
    assert_eq!(report.failed, 0, "rolling restart failed jobs: {report:?}");

    // Every worker was cycled: two restarts, all pids fresh, pool whole.
    wait_until("both workers cycled", Duration::from_secs(60), || {
        router.restarts() >= 2 && router.workers_up() == 2
    });
    let after = router.worker_pids();
    for pid in &before {
        assert!(
            !after.contains(pid),
            "stale worker pid {pid} survived the rolling restart"
        );
    }

    c.shutdown().unwrap();
    let drain = handle.join();
    assert_eq!(drain.dropped, 0, "drain dropped jobs: {drain:?}");
    assert_eq!(drain.rmem_leaked, 0, "rmem slots leaked: {drain:?}");
}
