//! Fault-tolerance integration tests: seeded chaos schedules over the
//! construct matrix, timed-lock diagnostics, and the MCA→native
//! graceful-degradation path (DESIGN.md §5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mca_mrapi::{FaultPlan, FaultProbe, FaultSite, MrapiStatus, MrapiSystem};
use romp::{BackendKind, Config, McaBackend, McaOptions, RetryPolicy, Runtime};
use romp_validation::chaos::{run_chaos, ChaosOutcome};

/// The CI chaos matrix: eight fixed seeds, both backends, teams of 1 and
/// 4.  The contract: zero panics, zero wrong results — typed errors and
/// degradations are permitted and reported.
#[test]
fn chaos_matrix_is_safe_on_both_backends() {
    let seeds: Vec<u64> = (0..8).map(|k| 0xC0FFEE + k).collect();
    for kind in BackendKind::all() {
        let report = run_chaos(kind, &seeds, &[1, 4]);
        assert!(report.all_safe(), "{}", report.summary());
        assert!(
            report.runs.len() >= 8 * 2,
            "{}: matrix actually ran",
            report.backend
        );
        if kind == BackendKind::Native {
            // The native backend has no MRAPI boundaries: every run must
            // be plainly correct, nothing degraded.
            assert!(report
                .runs
                .iter()
                .all(|r| r.outcome == ChaosOutcome::Correct));
            assert!(report.degraded_seeds.is_empty());
        }
    }
}

/// A persistent injected failure mid-run must flip the runtime over to
/// the native backend — and every region, before and after the flip,
/// must still produce correct results.
#[test]
fn mca_runtime_falls_back_to_native_after_persistent_failure() {
    let sys = MrapiSystem::new_t4240();
    // The third shared-memory allocation (and everything after) fails
    // with a genuinely persistent status.
    let plan = Arc::new(FaultPlan::new(42).with_persistent(
        FaultSite::ShmemCreate,
        MrapiStatus::ErrMemLimit,
        2,
    ));
    sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
    let be = McaBackend::with_options(
        sys,
        McaOptions {
            lock_timeout: Duration::from_millis(10),
            retry: RetryPolicy::default(),
        },
    )
    .unwrap();
    let rt = Runtime::with_config_and_backend(
        Config::default().with_backend(BackendKind::Mca),
        Box::new(be),
    )
    .unwrap();
    assert_eq!(rt.backend_kind(), BackendKind::Mca);
    assert!(!rt.degraded());

    for round in 0..6 {
        let sum = rt.parallel_reduce_sum(4, 0..10_000u64, |i| i);
        assert_eq!(sum, 49_995_000, "round {round} correct across the swap");
    }
    assert!(
        rt.degraded(),
        "persistent failure must trigger the fallback"
    );
    assert_eq!(
        rt.backend_kind(),
        BackendKind::Native,
        "runtime now reports the fallback backend"
    );
    // The degraded runtime keeps serving constructs.
    let counter = AtomicU64::new(0);
    rt.parallel(4, |w| {
        w.critical("post-degrade", || {
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
        });
    });
    assert_eq!(counter.load(Ordering::Relaxed), 4);
}

/// Timed lock waits under genuine contention: the region completes on
/// both backends, and the MCA backend documents the over-long wait with
/// a holder/waiter report instead of degrading.
#[test]
fn contended_timed_locks_report_and_recover() {
    for kind in BackendKind::all() {
        let rt = Runtime::with_config(
            Config::default()
                .with_backend(kind)
                .with_lock_timeout(Duration::from_millis(5)),
        )
        .unwrap();
        let lock = rt.new_lock();
        lock.set();
        let entered = AtomicU64::new(0);
        rt.parallel(2, |w| {
            if w.thread_num() == 0 {
                // Hold the lock well past the configured timeout, so the
                // contender's wait is cut into multiple timed rounds.
                std::thread::sleep(Duration::from_millis(25));
                lock.unset();
            } else {
                lock.with(|| {
                    entered.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            entered.load(Ordering::Relaxed),
            1,
            "{}: contender eventually acquired",
            kind.label()
        );
        assert!(
            !rt.degraded(),
            "{}: contention never degrades",
            kind.label()
        );
        let reports = rt.take_deadlock_reports();
        match kind {
            BackendKind::Mca => {
                assert!(
                    !reports.is_empty(),
                    "mca: over-long wait must produce a report"
                );
                assert!(reports[0].waited >= Duration::from_millis(5));
            }
            BackendKind::Native => assert!(reports.is_empty()),
        }
    }
}

/// Transient injected faults at every MRAPI boundary: bounded retries
/// absorb them, the runtime stays on the MCA backend, and results are
/// exact.
#[test]
fn transient_faults_are_retried_without_degradation() {
    let sys = MrapiSystem::new_t4240();
    let plan = Arc::new(
        FaultPlan::new(0xFEED)
            .with_fail_rate(FaultSite::MutexCreate, 150_000)
            .with_fail_rate(FaultSite::NodeCreate, 150_000)
            .with_delay(FaultSite::MutexLock, 100_000, Duration::from_micros(200)),
    );
    sys.set_fault_probe(Some(plan as Arc<dyn FaultProbe>));
    let be = McaBackend::with_options(
        sys,
        McaOptions {
            lock_timeout: Duration::from_millis(50),
            retry: RetryPolicy::default(),
        },
    )
    .unwrap();
    let rt = Runtime::with_config_and_backend(
        Config::default().with_backend(BackendKind::Mca),
        Box::new(be),
    )
    .unwrap();
    let value = AtomicU64::new(0);
    rt.parallel(4, |w| {
        for _ in 0..50 {
            w.critical("retry-path", || {
                let v = value.load(Ordering::Relaxed);
                value.store(v + 1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(value.load(Ordering::Relaxed), 200);
    assert!(!rt.degraded(), "transient faults never degrade the runtime");
    assert_eq!(rt.backend_kind(), BackendKind::Mca);
}
