//! Quickstart: the OpenMP-MCA stack in one minute.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the two runtimes the paper compares (stock-style native vs
//! MCA-backed), runs the same parallel computation on both, and shows the
//! MRAPI plumbing underneath the MCA one.

use openmp_mca::platform::Topology;
use openmp_mca::romp::{BackendKind, ReduceOp, Runtime, Schedule};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    // The board the paper targets, as a simulated platform.
    let board = Topology::t4240rdb();
    println!(
        "platform: {} — {} clusters × {} cores × {} hw threads @ {:.1} GHz",
        board.name,
        board.num_clusters(),
        board.num_cores() / board.num_clusters(),
        board.num_hw_threads() / board.num_cores(),
        board.clock_hz as f64 / 1e9
    );

    for kind in BackendKind::all() {
        let rt = Runtime::with_backend(kind).unwrap();
        println!(
            "\n== {} backend (default team: {} threads) ==",
            kind.label(),
            rt.max_threads()
        );

        // #pragma omp parallel for reduction(+:pi) — estimate π by midpoint
        // integration of 4/(1+x²).
        let n = 4_000_000u64;
        let h = 1.0 / n as f64;
        let pi = rt.parallel_reduce_sum_f64(8, 0..n, |i| {
            let x = h * (i as f64 + 0.5);
            4.0 / (1.0 + x * x)
        }) * h;
        println!(
            "pi ≈ {pi:.12}   (error {:.2e})",
            (pi - std::f64::consts::PI).abs()
        );

        // Worksharing + single + barrier + critical in one region.
        let hits = AtomicU64::new(0);
        rt.parallel(6, |w| {
            w.single(|| println!("team of {} says hello (one voice)", w.num_threads()));
            w.for_range(0..600, Schedule::Dynamic { chunk: 16 }, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            let team_total = w.reduce_u64(w.thread_num() as u64, ReduceOp::Sum);
            w.master(|| {
                println!(
                    "loop covered {} iterations; Σ thread ids = {team_total}",
                    hits.load(Ordering::Relaxed)
                )
            });
        });

        println!("runtime stats: {:?}", rt.stats());
    }
}
