//! Dump the full MRAPI resource metadata tree (paper §2B.4 / Figure 1).
//!
//! ```text
//! cargo run --example resource_tree [p4080]
//! ```
//!
//! Prints the complete resource tree for the T4240RDB model (or the
//! P4080DS predecessor with the `p4080` argument), the filtered per-kind
//! views MRAPI supports, and a live dynamic-attribute update.

use openmp_mca::mrapi::{DomainId, MrapiSystem, NodeId};
use openmp_mca::platform::resource::ResourceKind;
use openmp_mca::platform::Topology;

fn main() {
    let topo = if std::env::args().any(|a| a == "p4080") {
        Topology::p4080ds()
    } else {
        Topology::t4240rdb()
    };
    println!("platform: {}\n", topo.name);

    let sys = MrapiSystem::new(topo);
    let node = sys.initialize(DomainId(1), NodeId(0)).unwrap();
    let tree = node.resources_get().unwrap();
    println!("{}", tree.render());

    println!("filtered views (mrapi_resources_get with a type filter):");
    for kind in [
        ResourceKind::Cluster,
        ResourceKind::Core,
        ResourceKind::Cache,
    ] {
        let filtered = node.resources_get_filtered(kind).unwrap();
        println!("  {:?}: {} nodes", kind, filtered.root.children.len());
    }

    // Dynamic attributes: publish a utilization sample and observe it.
    node.report_utilization(0, 93).unwrap();
    println!(
        "\ncpu0 utilization after publishing 93: {}",
        node.utilization(0).unwrap()
    );
}
