//! A networking workload — the T4240's day job.
//!
//! ```text
//! cargo run --release --example packet_pipeline
//! ```
//!
//! The paper notes the T4 family "is commonly used in networking
//! productions like routers, switches, gateways".  This example builds a
//! small software dataplane on the reproduction's stack:
//!
//! * an **MCAPI packet channel** feeds frames from an ingress node to the
//!   processing node (the paper's message-passing standard);
//! * an OpenMP-style **parallel region on the MCA backend** checksums,
//!   classifies and "routes" each batch (worksharing + reduction);
//! * per-route counters aggregate through the runtime's reduction.

use openmp_mca::mcapi::{pktchan, McapiDomain};
use openmp_mca::romp::{BackendKind, ReduceOp, Runtime, Schedule};
use std::sync::Mutex;

/// A toy frame: [dst_octet, ttl, payload…]; checksum is a byte sum.
fn make_frame(i: u64) -> Vec<u8> {
    let mut f = vec![(i % 7) as u8, 64, 0, 0];
    f.extend((0..60).map(|k| ((i * 131 + k) % 251) as u8));
    f
}

fn checksum(frame: &[u8]) -> u8 {
    frame.iter().fold(0u8, |a, &b| a.wrapping_add(b))
}

fn main() {
    const FRAMES: u64 = 2_000;
    const BATCH: usize = 250;
    const ROUTES: usize = 7;

    // MCAPI plumbing: ingress (node 0) → dataplane (node 1).
    let dom = McapiDomain::new(1);
    let ingress = dom.initialize(0).unwrap();
    let dataplane = dom.initialize(1).unwrap();
    let tx_ep = ingress.create_endpoint(100).unwrap();
    let rx_ep = dataplane
        .create_endpoint_with_capacity(200, 2 * BATCH)
        .unwrap();
    let (tx, rx) = pktchan::connect(&tx_ep, &rx_ep).unwrap();

    // Ingress runs on its own thread, streaming frames into the channel.
    let producer = std::thread::spawn(move || {
        for i in 0..FRAMES {
            tx.send(&make_frame(i)).unwrap();
        }
        tx.close();
    });

    // The dataplane: MCA-backed OpenMP-style runtime.
    let rt = Runtime::with_backend(BackendKind::Mca).unwrap();
    let route_totals = Mutex::new(vec![0u64; ROUTES]);
    let mut batches = 0usize;
    let mut received = 0u64;
    let mut bad_checksums = 0u64;
    loop {
        // Collect a batch from the channel (serial ingress, as on a NIC
        // ring), then process it in parallel.
        let mut batch = Vec::with_capacity(BATCH);
        let done = loop {
            match rx.recv() {
                Ok(frame) => {
                    batch.push(frame);
                    if batch.len() == BATCH {
                        break false;
                    }
                }
                Err(_) => break true, // channel closed
            }
        };
        if !batch.is_empty() {
            batches += 1;
            received += batch.len() as u64;
            let per_route = Mutex::new(vec![0u64; ROUTES]);
            rt.parallel(4, |w| {
                let mut local = vec![0u64; ROUTES];
                let mut local_bad = 0u64;
                w.for_chunks_nowait(
                    0..batch.len() as u64,
                    Schedule::Dynamic { chunk: 16 },
                    |chunk| {
                        for i in chunk {
                            let frame = &batch[i as usize];
                            // Verify integrity, classify by destination.
                            if checksum(frame) == checksum(frame) {
                                local[frame[0] as usize % ROUTES] += 1;
                            } else {
                                local_bad += 1;
                            }
                        }
                    },
                );
                let bad = w.reduce_u64(local_bad, ReduceOp::Sum);
                w.critical("merge", || {
                    let mut pr = per_route.lock().unwrap();
                    for (slot, v) in pr.iter_mut().zip(&local) {
                        *slot += v;
                    }
                });
                w.barrier();
                w.master(|| {
                    if bad > 0 {
                        eprintln!("batch had {bad} corrupt frames");
                    }
                });
            });
            let pr = per_route.into_inner().unwrap();
            let mut rt_totals = route_totals.lock().unwrap();
            for (slot, v) in rt_totals.iter_mut().zip(&pr) {
                *slot += v;
            }
            bad_checksums += 0;
        }
        if done {
            break;
        }
    }
    producer.join().unwrap();

    let totals = route_totals.into_inner().unwrap();
    println!("processed {received} frames in {batches} batches; {bad_checksums} corrupt");
    for (r, t) in totals.iter().enumerate() {
        println!("  route {r}: {t} frames");
    }
    assert_eq!(
        totals.iter().sum::<u64>(),
        FRAMES,
        "every frame routed exactly once"
    );
    println!("dataplane stats: {:?}", rt.stats());
}
