//! Embedded image processing on the MCA-backed runtime.
//!
//! ```text
//! cargo run --release --example image_filter
//! ```
//!
//! The paper's related work includes parallelizing ultrasound image
//! processing with OpenMP on multicore embedded systems (its ref. [33]).
//! This example runs a comparable pipeline — synthetic speckle image →
//! 3×3 median despeckle → Sobel edge magnitude → histogram — with every
//! stage workshared on the MCA backend, and checks the parallel output
//! against a serial reference.

use openmp_mca::romp::{BackendKind, Runtime, Schedule};
use std::sync::Mutex;

const W: usize = 512;
const H: usize = 384;

/// Deterministic synthetic "ultrasound" frame: a bright ellipse with
/// speckle noise from a small LCG.
fn synthesize() -> Vec<u8> {
    let mut img = vec![0u8; W * H];
    let mut lcg = 0x1234_5678u64;
    for y in 0..H {
        for x in 0..W {
            let dx = (x as f64 - W as f64 / 2.0) / (W as f64 / 3.0);
            let dy = (y as f64 - H as f64 / 2.0) / (H as f64 / 4.0);
            let body = if dx * dx + dy * dy < 1.0 { 160.0 } else { 40.0 };
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((lcg >> 33) % 64) as f64 - 32.0;
            img[y * W + x] = (body + noise).clamp(0.0, 255.0) as u8;
        }
    }
    img
}

fn median3x3_at(src: &[u8], x: usize, y: usize) -> u8 {
    let mut v = [0u8; 9];
    let mut k = 0;
    for dy in -1i32..=1 {
        for dx in -1i32..=1 {
            let yy = (y as i32 + dy).clamp(0, H as i32 - 1) as usize;
            let xx = (x as i32 + dx).clamp(0, W as i32 - 1) as usize;
            v[k] = src[yy * W + xx];
            k += 1;
        }
    }
    v.sort_unstable();
    v[4]
}

fn sobel_at(src: &[u8], x: usize, y: usize) -> u8 {
    let p = |dx: i32, dy: i32| -> i32 {
        let yy = (y as i32 + dy).clamp(0, H as i32 - 1) as usize;
        let xx = (x as i32 + dx).clamp(0, W as i32 - 1) as usize;
        src[yy * W + xx] as i32
    };
    let gx = -p(-1, -1) - 2 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2 * p(1, 0) + p(1, 1);
    let gy = -p(-1, -1) - 2 * p(0, -1) - p(1, -1) + p(-1, 1) + 2 * p(0, 1) + p(1, 1);
    (((gx * gx + gy * gy) as f64).sqrt()).min(255.0) as u8
}

/// The pipeline: despeckle → edges → 16-bin histogram.
fn pipeline(rt: &Runtime, threads: usize, src: &[u8]) -> (Vec<u8>, Vec<u64>) {
    let despeckled = Mutex::new(vec![0u8; W * H]);
    let edges = Mutex::new(vec![0u8; W * H]);
    let histogram = Mutex::new(vec![0u64; 16]);
    rt.parallel(threads, |w| {
        // Stage 1: median filter (rows workshared; writes disjoint rows).
        w.for_range(0..H as u64, Schedule::Static { chunk: None }, |y| {
            let y = y as usize;
            let mut row = vec![0u8; W];
            for (x, out) in row.iter_mut().enumerate() {
                *out = median3x3_at(src, x, y);
            }
            despeckled.lock().unwrap()[y * W..(y + 1) * W].copy_from_slice(&row);
        });
        // for_range's implicit barrier separates the stages.
        let snap1 = despeckled.lock().unwrap().clone();
        w.for_range(0..H as u64, Schedule::Dynamic { chunk: 8 }, |y| {
            let y = y as usize;
            let mut row = vec![0u8; W];
            for (x, out) in row.iter_mut().enumerate() {
                *out = sobel_at(&snap1, x, y);
            }
            edges.lock().unwrap()[y * W..(y + 1) * W].copy_from_slice(&row);
        });
        // Stage 3: histogram with per-worker bins merged in a critical.
        let snap2 = edges.lock().unwrap().clone();
        let mut local = vec![0u64; 16];
        w.for_range_nowait(0..(W * H) as u64, Schedule::Static { chunk: None }, |i| {
            local[(snap2[i as usize] >> 4) as usize] += 1;
        });
        w.critical("hist", || {
            let mut h = histogram.lock().unwrap();
            for (slot, v) in h.iter_mut().zip(&local) {
                *slot += v;
            }
        });
        w.barrier();
    });
    (edges.into_inner().unwrap(), histogram.into_inner().unwrap())
}

fn main() {
    let src = synthesize();
    let rt = Runtime::with_backend(BackendKind::Mca).unwrap();

    let t0 = std::time::Instant::now();
    let (edges, hist) = pipeline(&rt, 6, &src);
    let par_t = t0.elapsed();

    // Serial reference for verification.
    let (edges_ref, hist_ref) = pipeline(&rt, 1, &src);
    assert_eq!(edges, edges_ref, "parallel edge map must equal serial");
    assert_eq!(hist, hist_ref, "parallel histogram must equal serial");

    let total: u64 = hist.iter().sum();
    println!(
        "{}x{} frame filtered on the MCA backend in {par_t:?} (6 workers)",
        W, H
    );
    println!("edge-magnitude histogram ({} pixels):", total);
    let max = *hist.iter().max().unwrap() as f64;
    for (bin, &count) in hist.iter().enumerate() {
        let bar = "#".repeat((count as f64 / max * 40.0) as usize);
        println!(
            "  [{:>3}-{:>3}] {:>8} {}",
            bin * 16,
            bin * 16 + 15,
            count,
            bar
        );
    }
    println!("parallel output verified against serial reference.");
}
