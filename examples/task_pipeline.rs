//! Task-parallel sensor pipeline on MTAPI — the paper's future work (§7).
//!
//! ```text
//! cargo run --example task_pipeline
//! ```
//!
//! The paper's conclusion commits to exploring MTAPI next; this example
//! shows what that buys: an embedded sensor-fusion pipeline expressed as
//! MTAPI *jobs* with an ordered *queue* for the stateful stage, a *group*
//! for the fan-out stage, and task priorities for an urgent control
//! message — the EMB²-style workflow the paper cites ([14], [15]).
//!
//! Pipeline: raw sample → (fan-out) per-channel FIR filter → (ordered)
//! exponential smoother → report.

use openmp_mca::mtapi::Mtapi;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const CHANNELS: usize = 4;
const SAMPLES: usize = 64;

fn main() {
    let mt = Mtapi::initialize(1, 0, 3).unwrap();

    // Job 1: FIR filter (stateless — safe to run out of order, fanned out
    // into a group). Input: [channel, s0..s7] as bytes; output: filtered.
    mt.create_action(1, |input| {
        let acc: u32 = input[1..].iter().map(|&b| b as u32).sum();
        vec![input[0], (acc / (input.len() as u32 - 1)) as u8]
    })
    .unwrap();

    // Job 2: exponential smoother — stateful, so it rides an ordered queue.
    let state = Arc::new(Mutex::new([0f64; CHANNELS]));
    let s2 = Arc::clone(&state);
    mt.create_action(2, move |input| {
        let (ch, v) = (input[0] as usize, input[1] as f64);
        let mut st = s2.lock().unwrap();
        st[ch] = 0.8 * st[ch] + 0.2 * v;
        vec![ch as u8, st[ch] as u8]
    })
    .unwrap();

    // Job 3: urgent control message (priority 0 jumps the queue of work).
    mt.create_action(3, |input| {
        println!(
            "  !! control message handled: {:?}",
            std::str::from_utf8(input).unwrap()
        );
        vec![]
    })
    .unwrap();

    let fir = mt.job(1).unwrap();
    let control = mt.job(3).unwrap();
    let smoother_q = mt.create_queue(2).unwrap();

    // Synthesize samples and push them through.
    let mut smoothed_tasks = Vec::new();
    for s in 0..SAMPLES {
        let group = mt.create_group();
        let mut fir_tasks = Vec::new();
        for ch in 0..CHANNELS {
            let mut frame = vec![ch as u8];
            frame.extend((0..8).map(|k| ((s * 31 + ch * 7 + k * 3) % 97) as u8));
            fir_tasks.push(fir.start_in_group(&group, frame).unwrap());
        }
        if s == SAMPLES / 2 {
            // Mid-stream urgent event.
            control
                .start_prio(b"recalibrate".to_vec(), 0, None)
                .unwrap();
        }
        group.wait_all(Some(Duration::from_secs(10))).unwrap();
        for t in fir_tasks {
            let filtered = t.wait(Some(Duration::from_secs(10))).unwrap();
            smoothed_tasks.push(smoother_q.enqueue(filtered).unwrap());
        }
    }
    let mut last = [0u8; CHANNELS];
    for t in smoothed_tasks {
        let out = t.wait(Some(Duration::from_secs(10))).unwrap();
        last[out[0] as usize] = out[1];
    }

    println!(
        "processed {} samples × {} channels; {} tasks executed",
        SAMPLES,
        CHANNELS,
        mt.tasks_executed()
    );
    for (ch, v) in last.iter().enumerate() {
        println!("  channel {ch}: smoothed level {v}");
    }
    let st = state.lock().unwrap();
    assert!(st.iter().all(|&v| v > 0.0), "every channel smoothed");
    assert_eq!(mt.tasks_executed(), SAMPLES * CHANNELS * 2 + 1);
    println!("pipeline complete: ordered smoothing + fan-out filtering + priority control.");
}
