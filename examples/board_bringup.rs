//! Board bring-up walkthrough (the paper's §4B and Figures 1–3).
//!
//! ```text
//! cargo run --example board_bringup
//! ```
//!
//! Narrates the environment the paper had to build before any experiment
//! could run: the TFTP/NFS boot flow of Figure 3, the hypervisor
//! partitioning of Figure 2, and the block-diagram resources of Figure 1
//! (as the MRAPI metadata tree the runtime actually reads).

use openmp_mca::mrapi::{DomainId, MrapiSystem, NodeId};
use openmp_mca::platform::boot::{bring_up, BootConfig};
use openmp_mca::platform::partition::{GuestKind, Hypervisor, PartitionSpec};
use openmp_mca::platform::Topology;

fn main() {
    let board = Topology::t4240rdb();

    println!("== Figure 3: TFTP/NFS development-environment boot ==");
    let cfg = BootConfig::default();
    match bring_up(&board, &cfg) {
        Ok(log) => {
            for ev in &log {
                println!("[{:?}] {}", ev.stage, ev.message);
            }
        }
        Err((partial, failed)) => {
            for ev in &partial {
                println!("[{:?}] {}", ev.stage, ev.message);
            }
            println!("boot FAILED at {failed:?}");
            return;
        }
    }

    println!("\n== Figure 2: embedded hypervisor partitions ==");
    let mut hv = Hypervisor::new(board);
    for spec in [
        PartitionSpec {
            name: "linux-smp".into(),
            hw_threads: 16,
            memory_bytes: 4 << 30,
            guest: GuestKind::Linux,
        },
        PartitionSpec {
            name: "rtos-dataplane".into(),
            hw_threads: 6,
            memory_bytes: 1 << 30,
            guest: GuestKind::Rtos,
        },
        PartitionSpec {
            name: "baremetal-dsp".into(),
            hw_threads: 2,
            memory_bytes: 512 << 20,
            guest: GuestKind::BareMetal,
        },
    ] {
        let p = hv.create_partition(&spec).expect("partition fits");
        println!(
            "partition {:<16} {:?}: cpus {:?}, mem {:#x}+{} MiB",
            p.name,
            p.guest,
            p.hw_threads,
            p.mem_base,
            p.mem_size >> 20
        );
    }
    let window = hv
        .shared_window("linux-smp", "baremetal-dsp", 1 << 20)
        .unwrap();
    println!(
        "shared window for MCAPI traffic: {} ({} KiB)",
        window.name,
        window.size >> 10
    );

    println!("\n== Figure 1: the platform as MRAPI metadata (what the runtime reads) ==");
    let sys = MrapiSystem::new_t4240();
    let node = sys.initialize(DomainId(1), NodeId(0)).unwrap();
    let tree = node.resources_get().unwrap();
    // Print the top of the tree; the full dump is the resource_tree example.
    for line in tree.render().lines().take(12) {
        println!("{line}");
    }
    println!("…");
    println!(
        "online processors per MRAPI metadata: {} (what sizes the OpenMP team, §5B.4)",
        node.online_processors().unwrap()
    );
}
