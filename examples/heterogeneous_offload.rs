//! Host ↔ accelerator offload over MCAPI + MRAPI remote memory.
//!
//! ```text
//! cargo run --example heterogeneous_offload
//! ```
//!
//! The paper's future work (§7) and its TECHCON reference [3]: use MCAPI to
//! drive a bare-metal accelerator from the host partition.  This example
//! stages the full protocol on the simulated platform:
//!
//! 1. the host writes an input buffer into **MRAPI remote memory** (the
//!    accelerator's local store, reached by modeled DMA);
//! 2. a **MCAPI scalar channel** doorbell tells the "DSP" node to go;
//! 3. the DSP node (a worker thread standing in for the bare-metal core)
//!    DMAs the buffer in, computes a dot product, writes the result back;
//! 4. a doorbell returns, and the host DMAs the result out.
//!
//! The simulated DMA ledger shows what the transfers would cost on the
//! board.

use openmp_mca::mcapi::{sclchan, McapiDomain};
use openmp_mca::mrapi::{DomainId, MrapiSystem, NodeId, RmemAttributes};

const N: usize = 4096;

fn main() {
    // One MRAPI system = the board; host is node 0.
    let sys = MrapiSystem::new_t4240();
    let host = sys.initialize(DomainId(1), NodeId(0)).unwrap();

    // The accelerator's local store: remote memory behind the DMA window.
    let inputs: Vec<f64> = (0..N).map(|i| (i as f64 * 0.001).sin()).collect();
    let weights: Vec<f64> = (0..N).map(|i| (i as f64 * 0.002).cos()).collect();
    let rmem = host
        .rmem_create(7, 2 * N * 8 + 8, &RmemAttributes::default())
        .unwrap();

    // MCAPI doorbells host↔DSP.
    let mcapi = McapiDomain::new(1);
    let host_node = mcapi.initialize(0).unwrap();
    let dsp_node = mcapi.initialize(1).unwrap();
    let (go_tx, go_rx) = sclchan::connect(
        &host_node.create_endpoint(1).unwrap(),
        &dsp_node.create_endpoint(1).unwrap(),
    )
    .unwrap();
    let (done_tx, done_rx) = sclchan::connect(
        &dsp_node.create_endpoint(2).unwrap(),
        &host_node.create_endpoint(2).unwrap(),
    )
    .unwrap();

    // Stage the operands into the accelerator's memory (modeled DMA).
    let as_bytes = |v: &[f64]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
    let dma1 = rmem.write(0, &as_bytes(&inputs)).unwrap();
    let dma2 = rmem.write(N * 8, &as_bytes(&weights)).unwrap();
    println!(
        "host: staged {} KiB of operands (modeled DMA {:.1} µs)",
        2 * N * 8 / 1024,
        (dma1 + dma2) / 1e3
    );

    // The "DSP": an MRAPI worker node with its own view of everything.
    let dsp = host
        .thread_create(NodeId(1), move |me| {
            // Wait for the doorbell.
            let jobs = go_rx.recv_u32(None).unwrap();
            assert_eq!(jobs, 1);
            let rmem = me.rmem_get(7).unwrap();
            // DMA operands into "local" buffers.
            let mut raw = vec![0u8; 2 * N * 8];
            let in_ns = rmem.read(0, &mut raw).unwrap();
            let f = |chunk: &[u8]| f64::from_le_bytes(chunk.try_into().unwrap());
            let a: Vec<f64> = raw[..N * 8].chunks_exact(8).map(f).collect();
            let b: Vec<f64> = raw[N * 8..].chunks_exact(8).map(f).collect();
            // The accelerator kernel.
            let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            // Write the result back and ring the completion doorbell.
            let out_ns = rmem.write(2 * N * 8, &dot.to_le_bytes()).unwrap();
            println!(
                "dsp : dot product computed (DMA in {:.1} µs, out {:.2} µs)",
                in_ns / 1e3,
                out_ns / 1e3
            );
            done_tx.send_u32(0xD0E).unwrap();
        })
        .unwrap();

    // Kick the accelerator and wait.
    go_tx.send_u32(1).unwrap();
    let code = done_rx.recv_u32(None).unwrap();
    assert_eq!(code, 0xD0E);
    let mut out = [0u8; 8];
    rmem.read(2 * N * 8, &mut out).unwrap();
    let result = f64::from_le_bytes(out);
    dsp.join().unwrap();

    let reference: f64 = inputs.iter().zip(&weights).map(|(x, y)| x * y).sum();
    println!("host: accelerator result {result:.9}, reference {reference:.9}");
    assert!((result - reference).abs() < 1e-12);
    println!(
        "total modeled transfer time on the board: {:.1} µs",
        sys.simulated_transfer_ns() as f64 / 1e3
    );
}
